package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dssp/internal/core"
	"dssp/internal/obs"
	"dssp/internal/pipeline"
	"dssp/internal/shard"
	"dssp/internal/wire"
)

// NodeProxy is the HTTP deployment's shard.Backend: one remote dsspnode
// process reached over the node API. Queries and invalidations are
// idempotent and ride the shared retry path (one retry with backoff on
// connection errors — replaying an invalidation against already-emptied
// buckets is a no-op); updates are never retried, because a lost ack does
// not prove the update was not applied.
type NodeProxy struct {
	URL    string
	Client *http.Client
	Reg    *obs.Registry
}

// NewNodeProxy points a proxy at one node's base URL. A nil client gets a
// DefaultTimeout-bounded one.
func NewNodeProxy(url string, client *http.Client, reg *obs.Registry) NodeProxy {
	return NodeProxy{URL: url, Client: defaultClient(client), Reg: reg}
}

// Query proxies a sealed query to the node.
func (p NodeProxy) Query(ctx context.Context, sq wire.SealedQuery) (wire.SealedResult, bool, error) {
	var resp QueryResponse
	err := post(ctx, p.Client, p.URL+PathQuery, sq.TraceID, sq.ParentSpan, nil, sq, &resp, true, p.Reg)
	return resp.Result, resp.Hit, err
}

// Update proxies a sealed update through the node's full update pathway
// and relays the home server's confirmed sequence back to the router.
func (p NodeProxy) Update(ctx context.Context, su wire.SealedUpdate) (int, int, uint64, error) {
	var resp UpdateResponse
	err := post(ctx, p.Client, p.URL+PathUpdate, su.TraceID, su.ParentSpan, nil, su, &resp, false, p.Reg)
	return resp.Affected, resp.Invalidated, resp.Seq, err
}

// Invalidate pushes an already-confirmed update to the node's
// invalidation monitor, carrying the confirmed home sequence so the node
// raises its replica-freshness floor. Failures surface in the router's
// proxy-error counter and are returned to the fan-out's retry path.
func (p NodeProxy) Invalidate(ctx context.Context, su wire.SealedUpdate, seq uint64) (int, error) {
	var resp InvalidateResponse
	hdrs := http.Header{ConfirmSeqHeader: []string{strconv.FormatUint(seq, 10)}}
	err := post(ctx, p.Client, p.URL+PathInvalidate, su.TraceID, su.ParentSpan, hdrs, su, &resp, true, p.Reg)
	return resp.Invalidated, err
}

// ExportBuckets pulls the named template buckets' sealed entries from the
// node for a warm handoff. Request and response are the raw wire
// migration encoding, not gob.
func (p NodeProxy) ExportBuckets(ctx context.Context, templateIDs []string) ([]wire.BucketEntry, error) {
	raw, err := postBytes(ctx, p.Client, p.URL+PathBucketExport, wire.AppendTemplateIDs(nil, templateIDs), p.Reg)
	if err != nil {
		return nil, err
	}
	return wire.DecodeBucketEntries(raw)
}

// ImportBuckets pushes migrated sealed entries into the node's cache.
func (p NodeProxy) ImportBuckets(ctx context.Context, entries []wire.BucketEntry) (int, error) {
	raw, err := postBytes(ctx, p.Client, p.URL+PathBucketImport, wire.AppendBucketEntries(nil, entries), p.Reg)
	if err != nil {
		return 0, err
	}
	var resp BucketImportResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return 0, err
	}
	return resp.Imported, nil
}

// DropBuckets removes migrated buckets from the node after the epoch flip.
func (p NodeProxy) DropBuckets(ctx context.Context, templateIDs []string) (int, error) {
	raw, err := postBytes(ctx, p.Client, p.URL+PathBucketDrop, wire.AppendTemplateIDs(nil, templateIDs), p.Reg)
	if err != nil {
		return 0, err
	}
	var resp BucketDropResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return 0, err
	}
	return resp.Dropped, nil
}

// RouterOptions tune a router server.
type RouterOptions struct {
	// MaxFanout caps concurrent invalidation pushes per update.
	// 0 means shard.DefaultMaxFanout.
	MaxFanout int

	// Client is the HTTP client for all node round trips; nil gets a
	// DefaultTimeout-bounded one.
	Client *http.Client

	// Leakage, when set, audits the sealed traffic at the router's trust
	// boundary — the vantage point that sees the whole fleet's stream.
	Leakage pipeline.LeakageObserver

	// BlindCacheSize bounds the router's blind-key cache (sealed lookup
	// key -> owning node). 0 means shard.DefaultBlindCacheSize; negative
	// disables the cache.
	BlindCacheSize int

	// RetryBackoff is the pause before the router's single query retry.
	// 0 means shard.DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// RouterServer fronts a fleet of dsspnode processes with the shard
// router, speaking the same node API the single-node deployment does —
// clients cannot tell a router from a node, which is what lets the
// deployment scale out without touching the application. Like a node,
// the router is untrusted: it needs the application's template list (to
// precompute the fan-out plan from the public static analysis) but holds
// no keys.
type RouterServer struct {
	Router *shard.Router
	Reg    *obs.Registry
	Tracer *obs.Tracer

	// Pipe is the routed deployment's pathway: the shared pipeline over
	// the router's cache/transport halves, which adds fleet-wide
	// single-flight miss coalescing on top of the per-node pipelines.
	Pipe *pipeline.Pipeline

	// client builds NodeProxies for nodes joining after startup.
	client *http.Client

	// mu guards urls, the node URL -> ring node ID map behind the ring
	// admin endpoints. It is held across Router.Join/Leave so a concurrent
	// duplicate join of the same URL is rejected, not admitted twice.
	mu   sync.Mutex
	urls map[string]int
}

// NewRouterServer wires a router over the node base URLs, in fleet
// order. The analysis must be computed with the same options the nodes
// use, or the fan-out plan and the nodes' own invalidation would
// disagree about which templates an update can touch.
func NewRouterServer(analysis *core.Analysis, nodeURLs []string, opts RouterOptions) *RouterServer {
	client := defaultClient(opts.Client)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, obs.WallClock()).
		SetIdentity(obs.ProcRouter, "").
		SetStore(obs.NewSpanStore(0))
	backends := make([]shard.Backend, len(nodeURLs))
	for i, url := range nodeURLs {
		backends[i] = NewNodeProxy(url, client, reg)
	}
	planner := shard.NewPlanner(shard.NewAffinity(len(nodeURLs)), analysis)
	router := shard.NewRouter(planner, backends, tracer, shard.Options{
		MaxFanout:      opts.MaxFanout,
		BlindCacheSize: opts.BlindCacheSize,
		RetryBackoff:   opts.RetryBackoff,
	})
	urls := make(map[string]int, len(nodeURLs))
	for i, url := range nodeURLs {
		urls[url] = i
	}
	return &RouterServer{
		Router: router,
		Reg:    reg,
		Tracer: tracer,
		Pipe:   pipeline.New(router, router, tracer, pipeline.Options{Leakage: opts.Leakage}),
		client: client,
		urls:   urls,
	}
}

// Handler returns the router's HTTP API — the node API, served by the
// fleet.
func (s *RouterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+PathUpdate, s.handleUpdate)
	mux.HandleFunc("POST "+PathRingJoin, s.handleRingJoin)
	mux.HandleFunc("POST "+PathRingLeave, s.handleRingLeave)
	mux.HandleFunc("GET "+PathRing, s.handleRing)
	mux.Handle("GET "+PathMetrics, MetricsHandler(s.Reg))
	mux.Handle("GET "+PathTraces, TraceIDsHandler(s.Tracer.Store()))
	mux.Handle("GET "+PathTrace+"{id}", TraceHandler(s.Tracer.Store()))
	return mux
}

func (s *RouterServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var sq wire.SealedQuery
	if err := readGob(r.Body, &sq); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sq.TraceID = trace(sq.TraceID, r)
	sq.ParentSpan = spanParent(sq.ParentSpan, r)
	reply, err := s.Pipe.QuerySync(r.Context(), sq)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeGob(s.Reg, w, QueryResponse{Result: reply.Result, Hit: reply.Hit})
}

func (s *RouterServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var su wire.SealedUpdate
	if err := readGob(r.Body, &su); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	su.TraceID = trace(su.TraceID, r)
	su.ParentSpan = spanParent(su.ParentSpan, r)
	reply, err := s.Pipe.UpdateSync(r.Context(), su)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeGob(s.Reg, w, UpdateResponse{Affected: reply.Affected, Invalidated: reply.Invalidated, Seq: reply.Seq})
}

// RingJoinRequest admits a node process into the ring by its base URL.
// Warm (default true) streams the moved sealed buckets from their old
// owners before the epoch flips; false is a cold join that earns its
// working set through misses.
type RingJoinRequest struct {
	URL  string `json:"url"`
	Warm *bool  `json:"warm,omitempty"`
}

// RingLeaveRequest retires a ring member, named by node ID or by URL.
// Warm (default true) drains the departing node's sealed buckets to
// their new owners first; false declares the node dead (a kill — its
// entries are lost and re-missed).
type RingLeaveRequest struct {
	Node *int   `json:"node,omitempty"`
	URL  string `json:"url,omitempty"`
	Warm *bool  `json:"warm,omitempty"`
}

// RingResponse is the fleet's current membership view.
type RingResponse struct {
	Epoch   uint64         `json:"epoch"`
	Members []int          `json:"members"`
	URLs    map[string]int `json:"urls"` // node URL -> ring node ID
}

// handleRingJoin admits a node into the ring. A URL that is already a
// member answers 409: joining is not idempotent (each join mints a new
// node ID), so the duplicate must be an operator error.
func (s *RouterServer) handleRingJoin(w http.ResponseWriter, r *http.Request) {
	var req RingJoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		http.Error(w, "ring join: need JSON body {\"url\": ...}", http.StatusBadRequest)
		return
	}
	warm := req.Warm == nil || *req.Warm
	s.mu.Lock()
	defer s.mu.Unlock()
	if node, ok := s.urls[req.URL]; ok {
		http.Error(w, fmt.Sprintf("ring join: %s is already member %d", req.URL, node), http.StatusConflict)
		return
	}
	rep, err := s.Router.Join(r.Context(), NewNodeProxy(req.URL, s.client, s.Reg), warm)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	s.urls[req.URL] = rep.Node
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}

// handleRingLeave retires a member (warm drain) or declares it dead.
func (s *RouterServer) handleRingLeave(w http.ResponseWriter, r *http.Request) {
	var req RingLeaveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || (req.Node == nil && req.URL == "") {
		http.Error(w, "ring leave: need JSON body {\"node\": ...} or {\"url\": ...}", http.StatusBadRequest)
		return
	}
	warm := req.Warm == nil || *req.Warm
	s.mu.Lock()
	defer s.mu.Unlock()
	node := 0
	switch {
	case req.Node != nil:
		node = *req.Node
	default:
		n, ok := s.urls[req.URL]
		if !ok {
			http.Error(w, fmt.Sprintf("ring leave: %s is not a member", req.URL), http.StatusNotFound)
			return
		}
		node = n
	}
	rep, err := s.Router.Leave(r.Context(), node, warm)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for url, n := range s.urls {
		if n == node {
			delete(s.urls, url)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}

// handleRing serves the current membership and epoch.
func (s *RouterServer) handleRing(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	urls := make(map[string]int, len(s.urls))
	for u, n := range s.urls {
		urls[u] = n
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(RingResponse{
		Epoch:   s.Router.Epoch(),
		Members: s.Router.Members(),
		URLs:    urls,
	})
}
