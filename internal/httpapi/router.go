package httpapi

import (
	"context"
	"net/http"
	"strconv"

	"dssp/internal/core"
	"dssp/internal/obs"
	"dssp/internal/pipeline"
	"dssp/internal/shard"
	"dssp/internal/wire"
)

// NodeProxy is the HTTP deployment's shard.Backend: one remote dsspnode
// process reached over the node API. Queries and invalidations are
// idempotent and ride the shared retry path (one retry with backoff on
// connection errors — replaying an invalidation against already-emptied
// buckets is a no-op); updates are never retried, because a lost ack does
// not prove the update was not applied.
type NodeProxy struct {
	URL    string
	Client *http.Client
	Reg    *obs.Registry
}

// NewNodeProxy points a proxy at one node's base URL. A nil client gets a
// DefaultTimeout-bounded one.
func NewNodeProxy(url string, client *http.Client, reg *obs.Registry) NodeProxy {
	return NodeProxy{URL: url, Client: defaultClient(client), Reg: reg}
}

// Query proxies a sealed query to the node.
func (p NodeProxy) Query(ctx context.Context, sq wire.SealedQuery) (wire.SealedResult, bool, error) {
	var resp QueryResponse
	err := post(ctx, p.Client, p.URL+PathQuery, sq.TraceID, sq.ParentSpan, nil, sq, &resp, true, p.Reg)
	return resp.Result, resp.Hit, err
}

// Update proxies a sealed update through the node's full update pathway
// and relays the home server's confirmed sequence back to the router.
func (p NodeProxy) Update(ctx context.Context, su wire.SealedUpdate) (int, int, uint64, error) {
	var resp UpdateResponse
	err := post(ctx, p.Client, p.URL+PathUpdate, su.TraceID, su.ParentSpan, nil, su, &resp, false, p.Reg)
	return resp.Affected, resp.Invalidated, resp.Seq, err
}

// Invalidate pushes an already-confirmed update to the node's
// invalidation monitor, carrying the confirmed home sequence so the node
// raises its replica-freshness floor. Failures surface in the router's
// proxy-error counter and are returned to the fan-out's retry path.
func (p NodeProxy) Invalidate(ctx context.Context, su wire.SealedUpdate, seq uint64) (int, error) {
	var resp InvalidateResponse
	hdrs := http.Header{ConfirmSeqHeader: []string{strconv.FormatUint(seq, 10)}}
	err := post(ctx, p.Client, p.URL+PathInvalidate, su.TraceID, su.ParentSpan, hdrs, su, &resp, true, p.Reg)
	return resp.Invalidated, err
}

// RouterOptions tune a router server.
type RouterOptions struct {
	// MaxFanout caps concurrent invalidation pushes per update.
	// 0 means shard.DefaultMaxFanout.
	MaxFanout int

	// Client is the HTTP client for all node round trips; nil gets a
	// DefaultTimeout-bounded one.
	Client *http.Client

	// Leakage, when set, audits the sealed traffic at the router's trust
	// boundary — the vantage point that sees the whole fleet's stream.
	Leakage pipeline.LeakageObserver
}

// RouterServer fronts a fleet of dsspnode processes with the shard
// router, speaking the same node API the single-node deployment does —
// clients cannot tell a router from a node, which is what lets the
// deployment scale out without touching the application. Like a node,
// the router is untrusted: it needs the application's template list (to
// precompute the fan-out plan from the public static analysis) but holds
// no keys.
type RouterServer struct {
	Router *shard.Router
	Reg    *obs.Registry
	Tracer *obs.Tracer

	// Pipe is the routed deployment's pathway: the shared pipeline over
	// the router's cache/transport halves, which adds fleet-wide
	// single-flight miss coalescing on top of the per-node pipelines.
	Pipe *pipeline.Pipeline
}

// NewRouterServer wires a router over the node base URLs, in fleet
// order. The analysis must be computed with the same options the nodes
// use, or the fan-out plan and the nodes' own invalidation would
// disagree about which templates an update can touch.
func NewRouterServer(analysis *core.Analysis, nodeURLs []string, opts RouterOptions) *RouterServer {
	client := defaultClient(opts.Client)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, obs.WallClock()).
		SetIdentity(obs.ProcRouter, "").
		SetStore(obs.NewSpanStore(0))
	backends := make([]shard.Backend, len(nodeURLs))
	for i, url := range nodeURLs {
		backends[i] = NewNodeProxy(url, client, reg)
	}
	planner := shard.NewPlanner(shard.NewAffinity(len(nodeURLs)), analysis)
	router := shard.NewRouter(planner, backends, tracer, shard.Options{MaxFanout: opts.MaxFanout})
	return &RouterServer{
		Router: router,
		Reg:    reg,
		Tracer: tracer,
		Pipe:   pipeline.New(router, router, tracer, pipeline.Options{Leakage: opts.Leakage}),
	}
}

// Handler returns the router's HTTP API — the node API, served by the
// fleet.
func (s *RouterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+PathUpdate, s.handleUpdate)
	mux.Handle("GET "+PathMetrics, MetricsHandler(s.Reg))
	mux.Handle("GET "+PathTraces, TraceIDsHandler(s.Tracer.Store()))
	mux.Handle("GET "+PathTrace+"{id}", TraceHandler(s.Tracer.Store()))
	return mux
}

func (s *RouterServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var sq wire.SealedQuery
	if err := readGob(r.Body, &sq); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sq.TraceID = trace(sq.TraceID, r)
	sq.ParentSpan = spanParent(sq.ParentSpan, r)
	reply, err := s.Pipe.QuerySync(r.Context(), sq)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeGob(s.Reg, w, QueryResponse{Result: reply.Result, Hit: reply.Hit})
}

func (s *RouterServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var su wire.SealedUpdate
	if err := readGob(r.Body, &su); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	su.TraceID = trace(su.TraceID, r)
	su.ParentSpan = spanParent(su.ParentSpan, r)
	reply, err := s.Pipe.UpdateSync(r.Context(), su)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeGob(s.Reg, w, UpdateResponse{Affected: reply.Affected, Invalidated: reply.Invalidated, Seq: reply.Seq})
}
