package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dssp/internal/apps"
	"dssp/internal/cache"
	"dssp/internal/core"
	"dssp/internal/dssp"
	"dssp/internal/encrypt"
	"dssp/internal/homeserver"
	"dssp/internal/shard"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// elasticHTTPFleet is a live toystore deployment: home + node processes
// + router, with handles kept for membership assertions.
type elasticHTTPFleet struct {
	t      *testing.T
	app    *template.App
	codec  *wire.Codec
	nodes  []*dssp.Node
	urls   []string
	router *httptest.Server
	client *Client

	analysis *core.Analysis
	homeURL  string
	hc       *http.Client
}

func newElasticHTTPFleet(t *testing.T, fleet int) *elasticHTTPFleet {
	t.Helper()
	app := apps.Toystore()
	codec := wire.NewCodec(app, encrypt.MustNewKeyring(make([]byte, encrypt.KeySize)), nil)
	db := storage.NewDatabase(app.Schema)
	for i := int64(1); i <= 8; i++ {
		if err := db.Insert("toys", storage.Row{
			sqlparse.IntVal(i), sqlparse.StringVal(fmt.Sprintf("toy-%d", i)), sqlparse.IntVal(i * 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	home := homeserver.New(db, app, codec)
	homeSrv := httptest.NewServer(HomeHandler(home))
	t.Cleanup(homeSrv.Close)
	analysis := core.Analyze(app, core.DefaultOptions())

	f := &elasticHTTPFleet{t: t, app: app, codec: codec, analysis: analysis, homeURL: homeSrv.URL, hc: homeSrv.Client()}
	for i := 0; i < fleet; i++ {
		f.urls = append(f.urls, f.spawnNode())
	}
	f.router = httptest.NewServer(NewRouterServer(analysis, f.urls, RouterOptions{}).Handler())
	t.Cleanup(f.router.Close)
	f.client = NewClient(codec, f.router.URL, f.router.Client())
	return f
}

// spawnNode stands up one more node process (not yet a member).
func (f *elasticHTTPFleet) spawnNode() string {
	n := dssp.NewNode(f.app, f.analysis, cache.Options{})
	srv := httptest.NewServer(NewNodeServer(n, f.homeURL, f.hc).Handler())
	f.t.Cleanup(srv.Close)
	f.nodes = append(f.nodes, n)
	return srv.URL
}

// post sends one admin request and returns the status and body.
func (f *elasticHTTPFleet) post(path string, req any) (int, []byte) {
	f.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		f.t.Fatal(err)
	}
	resp, err := f.router.Client().Post(f.router.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func (f *elasticHTTPFleet) ring() RingResponse {
	f.t.Helper()
	resp, err := f.router.Client().Get(f.router.URL + PathRing)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RingResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		f.t.Fatal(err)
	}
	return rr
}

// TestRingAdminWarmJoinMigratedEntriesHit drives the full elastic story
// over HTTP: warm the fleet, join a third node with a warm handoff, and
// require every previously cached query to still hit — including the
// buckets that migrated to the brand-new node.
func TestRingAdminWarmJoinMigratedEntriesHit(t *testing.T) {
	f := newElasticHTTPFleet(t, 2)
	ctx := context.Background()
	q2 := f.app.Query("Q2")
	for i := int64(1); i <= 8; i++ {
		if _, err := f.client.Query(ctx, q2, i); err != nil {
			t.Fatal(err)
		}
	}

	warm := true
	status, body := f.post(PathRingJoin, RingJoinRequest{URL: f.spawnNode(), Warm: &warm})
	if status != http.StatusOK {
		t.Fatalf("join: %d %s", status, body)
	}
	var rep shard.MigrationReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "join" || rep.Epoch != 1 || rep.Node != 2 {
		t.Fatalf("join report %+v", rep)
	}

	newNodeHitsBefore := f.nodes[2].Cache.Stats().Hits
	for i := int64(1); i <= 8; i++ {
		res, err := f.client.Query(ctx, q2, i)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Outcome.Hit {
			t.Errorf("Q2(%d) missed after the warm join; handoff lost it", i)
		}
	}
	q2Owner := shard.NewAffinityMembers(rep.Members).OwnerOfTemplate("Q2")
	if q2Owner == rep.Node {
		if rep.Entries == 0 {
			t.Error("Q2 moved to the new node but the report streamed no entries")
		}
		if f.nodes[2].Cache.Stats().Hits == newNodeHitsBefore {
			t.Error("migrated entries never hit on their new owner")
		}
	}

	rr := f.ring()
	if rr.Epoch != 1 || len(rr.Members) != 3 {
		t.Errorf("ring view %+v, want epoch 1 with 3 members", rr)
	}
}

func TestRingAdminDoubleJoinRejected(t *testing.T) {
	f := newElasticHTTPFleet(t, 2)
	url := f.spawnNode()
	if status, body := f.post(PathRingJoin, RingJoinRequest{URL: url}); status != http.StatusOK {
		t.Fatalf("first join: %d %s", status, body)
	}
	if status, _ := f.post(PathRingJoin, RingJoinRequest{URL: url}); status != http.StatusConflict {
		t.Fatalf("second join of the same URL: %d, want %d", status, http.StatusConflict)
	}
	// Rejecting the duplicate must not burn an epoch.
	if rr := f.ring(); rr.Epoch != 1 || len(rr.Members) != 3 {
		t.Errorf("ring view %+v after rejected duplicate, want epoch 1 with 3 members", rr)
	}
	// A member URL in the initial fleet is just as much a duplicate.
	if status, _ := f.post(PathRingJoin, RingJoinRequest{URL: f.urls[0]}); status != http.StatusConflict {
		t.Error("joining an initial member's URL was not rejected")
	}
}

func TestRingAdminLeaveByURLAndUnknowns(t *testing.T) {
	f := newElasticHTTPFleet(t, 3)
	status, body := f.post(PathRingLeave, RingLeaveRequest{URL: f.urls[1]})
	if status != http.StatusOK {
		t.Fatalf("leave by URL: %d %s", status, body)
	}
	var rep shard.MigrationReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Node != 1 || rep.Kind != "leave" || !rep.Warm {
		t.Fatalf("leave report %+v, want warm leave of node 1", rep)
	}
	if status, _ := f.post(PathRingLeave, RingLeaveRequest{URL: "http://nowhere.invalid"}); status != http.StatusNotFound {
		t.Errorf("leave of unknown URL: %d, want %d", status, http.StatusNotFound)
	}
	node := 99
	if status, _ := f.post(PathRingLeave, RingLeaveRequest{Node: &node}); status != http.StatusBadGateway {
		t.Errorf("leave of unknown node ID: %d, want %d", status, http.StatusBadGateway)
	}
	if status, _ := f.post(PathRingJoin, RingJoinRequest{}); status != http.StatusBadRequest {
		t.Errorf("join with no URL: %d, want %d", status, http.StatusBadRequest)
	}
}

// The node's bucket endpoints speak the raw migration encoding; a full
// export → import → drop cycle between two node processes must preserve
// the entries exactly.
func TestNodeBucketEndpointsRoundTrip(t *testing.T) {
	f := newElasticHTTPFleet(t, 2)
	ctx := context.Background()
	q2 := f.app.Query("Q2")
	for i := int64(1); i <= 4; i++ {
		if _, err := f.client.Query(ctx, q2, i); err != nil {
			t.Fatal(err)
		}
	}
	owner := shard.NewAffinity(2).OwnerOfTemplate("Q2")
	src, dst := f.urls[owner], f.urls[1-owner]
	hc := f.router.Client()

	post := func(url string, body []byte) (int, []byte) {
		resp, err := hc.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, out
	}

	status, raw := post(src+PathBucketExport, wire.AppendTemplateIDs(nil, []string{"Q2"}))
	if status != http.StatusOK {
		t.Fatalf("export: %d %s", status, raw)
	}
	entries, err := wire.DecodeBucketEntries(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("exported %d entries, want 4", len(entries))
	}

	status, body := post(dst+PathBucketImport, wire.AppendBucketEntries(nil, entries))
	if status != http.StatusOK {
		t.Fatalf("import: %d %s", status, body)
	}
	var imp BucketImportResponse
	if err := json.Unmarshal(body, &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Imported != 4 {
		t.Errorf("imported %d, want 4", imp.Imported)
	}

	status, body = post(src+PathBucketDrop, wire.AppendTemplateIDs(nil, []string{"Q2"}))
	if status != http.StatusOK {
		t.Fatalf("drop: %d %s", status, body)
	}
	var drop BucketDropResponse
	if err := json.Unmarshal(body, &drop); err != nil {
		t.Fatal(err)
	}
	if drop.Dropped != 4 {
		t.Errorf("dropped %d, want 4", drop.Dropped)
	}
	if got := f.nodes[owner].Cache.Len(); got != 0 {
		t.Errorf("source cache holds %d entries after the drop", got)
	}
	if got := f.nodes[1-owner].Cache.Len(); got != 4 {
		t.Errorf("destination cache holds %d entries, want 4", got)
	}

	if status, _ := post(src+PathBucketImport, []byte{0xff, 0xff, 0xff}); status != http.StatusBadRequest {
		t.Errorf("malformed import body: %d, want %d", status, http.StatusBadRequest)
	}
}
