package httpapi

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"

	"dssp/internal/apps"
)

// TestConcurrentNodeTraffic hammers one node with parallel queries,
// updates, and metrics scrapes. Under `go test -race` this is the
// regression test for the seed's unguarded cache maps and home-server
// counters: every HTTP handler runs on its own goroutine, so cache
// lookups, stores, invalidations, and the storage engine race unless the
// cache and home server serialize access themselves.
func TestConcurrentNodeTraffic(t *testing.T) {
	client, db, done := stack(t, nil)
	defer done()
	seedToys(t, db)
	app := apps.Toystore()

	const (
		workers = 8
		rounds  = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch w % 4 {
				case 0: // point query, cacheable
					if _, err := client.Query(context.Background(), app.Query("Q2"), 1+i%8); err != nil {
						t.Error(err)
						return
					}
				case 1: // name query on another template
					if _, err := client.Query(context.Background(), app.Query("Q1"), "bear"); err != nil {
						t.Error(err)
						return
					}
				case 2: // deletes drive invalidation concurrently with lookups
					if _, _, err := client.Update(context.Background(), app.Update("U1"), 100+w*rounds+i); err != nil {
						t.Error(err)
						return
					}
				case 3: // metrics scrapes read the registry while it mutates
					resp, err := http.Get(client.NodeURL + PathMetrics)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	// The run must also have produced coherent counters.
	snap, err := FetchMetrics(http.DefaultClient, client.NodeURL)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := int64(0), int64(0)
	for _, m := range snap.Metrics {
		switch m.Name {
		case "dssp_cache_hits_total":
			hits += m.Value
		case "dssp_cache_misses_total":
			misses += m.Value
		}
	}
	if hits+misses == 0 {
		t.Error("no lookups recorded after concurrent run")
	}
}
