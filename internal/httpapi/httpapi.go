// Package httpapi provides a network deployment of the DSSP architecture:
// the caching node and the home server as HTTP services, and a client that
// seals statements locally and talks to a node. The paper's Figure 1
// topology — clients near a DSSP node, the node far from the home server —
// becomes three processes connected by HTTP.
//
// Messages are the sealed types of package wire, gob-encoded. The node
// never holds keys: it receives sealed queries, serves them from its cache
// or forwards the opaque payload to the home server, and monitors
// completed updates for invalidation, exactly as in the in-process
// pathway.
//
// Every process exposes GET /v1/metrics — a snapshot of its obs.Registry
// in JSON (default) or the Prometheus text exposition format
// (?format=prom, or Accept: text/plain). Requests carry their wire-level
// trace ID in the X-DSSP-Trace header, so one statement can be followed
// from client through node to home server.
package httpapi

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dssp/internal/dssp"
	"dssp/internal/homeserver"
	"dssp/internal/obs"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// Paths of the HTTP API.
const (
	PathQuery      = "/v1/query"       // node: sealed query -> sealed result
	PathUpdate     = "/v1/update"      // node: sealed update -> ack
	PathMetrics    = "/v1/metrics"     // node and home: metrics snapshot (JSON or Prometheus text)
	PathExecQuery  = "/v1/exec/query"  // home: sealed query -> sealed result
	PathExecUpdate = "/v1/exec/update" // home: sealed update -> ack
)

// TraceHeader carries the request's trace ID between processes.
const TraceHeader = "X-DSSP-Trace"

// QueryResponse is the node's answer to a sealed query.
type QueryResponse struct {
	Result wire.SealedResult
	Hit    bool
}

// UpdateResponse is the node's answer to a sealed update.
type UpdateResponse struct {
	Affected    int
	Invalidated int
}

// ExecQueryResponse is the home server's answer to a forwarded query.
type ExecQueryResponse struct {
	Result  wire.SealedResult
	Empty   bool
	Scanned int
}

// ExecUpdateResponse is the home server's answer to a forwarded update.
type ExecUpdateResponse struct {
	Affected int
}

func writeGob(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	_, _ = w.Write(buf.Bytes())
}

func readGob(r io.Reader, v any) error {
	return gob.NewDecoder(r).Decode(v)
}

// post sends one gob request with the trace ID attached and decodes the
// gob response.
func post(client *http.Client, url, trace string, req, resp any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return err
	}
	hreq, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/x-gob")
	if trace != "" {
		hreq.Header.Set(TraceHeader, trace)
	}
	r, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		return fmt.Errorf("httpapi: %s: %s: %s", url, r.Status, bytes.TrimSpace(body))
	}
	return readGob(r.Body, resp)
}

// MetricsHandler serves a registry snapshot: JSON by default, Prometheus
// text exposition format when ?format=prom is given or the Accept header
// asks for text/plain.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		format := r.URL.Query().Get("format")
		accept := r.Header.Get("Accept")
		if format == "prom" || format == "prometheus" ||
			(format == "" && (strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics"))) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	})
}

// FetchMetrics retrieves a process's /v1/metrics snapshot as JSON.
func FetchMetrics(client *http.Client, baseURL string) (obs.Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var snap obs.Snapshot
	resp, err := client.Get(baseURL + PathMetrics)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("httpapi: %s%s: %s", baseURL, PathMetrics, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// HomeHandler exposes a home server over HTTP, including its metrics.
func HomeHandler(home *homeserver.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET "+PathMetrics, MetricsHandler(home.Obs()))
	mux.HandleFunc("POST "+PathExecQuery, func(w http.ResponseWriter, r *http.Request) {
		var sq wire.SealedQuery
		if err := readGob(r.Body, &sq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, empty, scanned, err := home.ExecQuery(sq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeGob(w, ExecQueryResponse{Result: res, Empty: empty, Scanned: scanned})
	})
	mux.HandleFunc("POST "+PathExecUpdate, func(w http.ResponseWriter, r *http.Request) {
		var su wire.SealedUpdate
		if err := readGob(r.Body, &su); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := home.ExecUpdate(su)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeGob(w, ExecUpdateResponse{Affected: n})
	})
	return mux
}

// NodeServer serves an application's traffic from a DSSP node, forwarding
// misses and updates to the home server.
type NodeServer struct {
	Node    *dssp.Node
	HomeURL string
	Client  *http.Client

	// Reg is the node's registry — shared with the node's cache — and
	// Tracer records the node-side stages (cache_lookup, network,
	// invalidate) against wall time.
	Reg    *obs.Registry
	Tracer *obs.Tracer
}

// NewNodeServer wires a node to its home server endpoint. The server
// adopts the node cache's registry so cache counters and node-side stage
// histograms appear in one /v1/metrics snapshot.
func NewNodeServer(node *dssp.Node, homeURL string, client *http.Client) *NodeServer {
	if client == nil {
		client = http.DefaultClient
	}
	reg := node.Cache.Obs()
	return &NodeServer{
		Node:    node,
		HomeURL: homeURL,
		Client:  client,
		Reg:     reg,
		Tracer:  obs.NewTracer(reg, obs.WallClock()),
	}
}

// Handler returns the node's HTTP API.
func (s *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+PathUpdate, s.handleUpdate)
	mux.Handle("GET "+PathMetrics, MetricsHandler(s.Reg))
	return mux
}

// trace picks the request's trace ID: the sealed message's, or the HTTP
// header when the message predates tracing.
func trace(sealed string, r *http.Request) string {
	if sealed != "" {
		return sealed
	}
	return r.Header.Get(TraceHeader)
}

// request records the node's end-to-end request histogram sample.
func (s *NodeServer) request(kind, tmpl string, start time.Duration) {
	s.Reg.Histogram(obs.MRequestSeconds, obs.L(obs.LKind, kind), obs.L(obs.LTemplate, tmpl)).
		Observe(s.Tracer.Now() - start)
}

func (s *NodeServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var sq wire.SealedQuery
	if err := readGob(r.Body, &sq); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr := trace(sq.TraceID, r)
	tmpl := obs.Tmpl(sq.TemplateID)
	start := s.Tracer.Now()
	lk := s.Tracer.Start(tr, obs.StageLookup, tmpl)
	res, hit := s.Node.HandleQuery(sq)
	lk.End()
	if hit {
		s.request(obs.KindQuery, tmpl, start)
		writeGob(w, QueryResponse{Result: res, Hit: true})
		return
	}
	net := s.Tracer.Start(tr, obs.StageNetwork, tmpl)
	var exec ExecQueryResponse
	if err := post(s.Client, s.HomeURL+PathExecQuery, tr, sq, &exec); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	net.End()
	s.Node.StoreResult(sq, exec.Result, exec.Empty)
	s.request(obs.KindQuery, tmpl, start)
	writeGob(w, QueryResponse{Result: exec.Result})
}

func (s *NodeServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var su wire.SealedUpdate
	if err := readGob(r.Body, &su); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr := trace(su.TraceID, r)
	tmpl := obs.Tmpl(su.TemplateID)
	start := s.Tracer.Now()
	net := s.Tracer.Start(tr, obs.StageNetwork, tmpl)
	var exec ExecUpdateResponse
	if err := post(s.Client, s.HomeURL+PathExecUpdate, tr, su, &exec); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	net.End()
	inv := s.Tracer.Start(tr, obs.StageInvalidate, tmpl)
	invalidated := s.Node.OnUpdateCompleted(su)
	inv.End()
	s.request(obs.KindUpdate, tmpl, start)
	writeGob(w, UpdateResponse{Affected: exec.Affected, Invalidated: invalidated})
}

// Client is the trusted application side talking to a remote DSSP node:
// it seals statements with the application's keyring, sends them to the
// node, and opens the (possibly encrypted) results.
type Client struct {
	Codec   *wire.Codec
	NodeURL string
	HTTP    *http.Client

	// Tracer, when set, records the trusted-side stages (seal, open) of
	// every statement. nil disables client-side tracing; the node and
	// home server instrument their own sides regardless.
	Tracer *obs.Tracer
}

// NewClient builds a remote client.
func NewClient(codec *wire.Codec, nodeURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{Codec: codec, NodeURL: nodeURL, HTTP: httpClient}
}

// Query runs one query template instance through the remote node.
func (c *Client) Query(t *template.Template, params ...interface{}) (*dssp.QueryResult, error) {
	vals, err := dssp.Params(params...)
	if err != nil {
		return nil, err
	}
	start := c.Tracer.Now()
	sq, err := c.Codec.SealQuery(t, vals)
	if err != nil {
		return nil, err
	}
	c.Tracer.Observe(sq.TraceID, obs.StageSeal, t.ID, start, c.Tracer.Now()-start)
	var resp QueryResponse
	if err := post(c.HTTP, c.NodeURL+PathQuery, sq.TraceID, sq, &resp); err != nil {
		return nil, err
	}
	op := c.Tracer.Start(sq.TraceID, obs.StageOpen, t.ID)
	res, err := c.Codec.OpenResult(resp.Result)
	if err != nil {
		return nil, err
	}
	op.End()
	return &dssp.QueryResult{Result: res, Outcome: dssp.QueryOutcome{Hit: resp.Hit, Rows: res.Len()}}, nil
}

// Update routes one update through the remote node.
func (c *Client) Update(t *template.Template, params ...interface{}) (affected, invalidated int, err error) {
	vals, err := dssp.Params(params...)
	if err != nil {
		return 0, 0, err
	}
	start := c.Tracer.Now()
	su, err := c.Codec.SealUpdate(t, vals)
	if err != nil {
		return 0, 0, err
	}
	c.Tracer.Observe(su.TraceID, obs.StageSeal, t.ID, start, c.Tracer.Now()-start)
	var resp UpdateResponse
	if err := post(c.HTTP, c.NodeURL+PathUpdate, su.TraceID, su, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Affected, resp.Invalidated, nil
}
