// Package httpapi provides a network deployment of the DSSP architecture:
// the caching node and the home server as HTTP services, and a client that
// seals statements locally and talks to a node. The paper's Figure 1
// topology — clients near a DSSP node, the node far from the home server —
// becomes three processes connected by HTTP.
//
// Messages are the sealed types of package wire, gob-encoded. The node
// never holds keys: it receives sealed queries, serves them from its cache
// or forwards the opaque payload to the home server, and monitors
// completed updates for invalidation, exactly as in the in-process
// pathway.
package httpapi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"

	"dssp/internal/dssp"
	"dssp/internal/homeserver"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// Paths of the HTTP API.
const (
	PathQuery      = "/v1/query"       // node: sealed query -> sealed result
	PathUpdate     = "/v1/update"      // node: sealed update -> ack
	PathStats      = "/v1/stats"       // node: cache statistics
	PathExecQuery  = "/v1/exec/query"  // home: sealed query -> sealed result
	PathExecUpdate = "/v1/exec/update" // home: sealed update -> ack
)

// QueryResponse is the node's answer to a sealed query.
type QueryResponse struct {
	Result wire.SealedResult
	Hit    bool
}

// UpdateResponse is the node's answer to a sealed update.
type UpdateResponse struct {
	Affected    int
	Invalidated int
}

// ExecQueryResponse is the home server's answer to a forwarded query.
type ExecQueryResponse struct {
	Result  wire.SealedResult
	Empty   bool
	Scanned int
}

// ExecUpdateResponse is the home server's answer to a forwarded update.
type ExecUpdateResponse struct {
	Affected int
}

func writeGob(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	_, _ = w.Write(buf.Bytes())
}

func readGob(r io.Reader, v any) error {
	return gob.NewDecoder(r).Decode(v)
}

// post sends one gob request and decodes the gob response.
func post(client *http.Client, url string, req, resp any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return err
	}
	r, err := client.Post(url, "application/x-gob", &buf)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		return fmt.Errorf("httpapi: %s: %s: %s", url, r.Status, bytes.TrimSpace(body))
	}
	return readGob(r.Body, resp)
}

// HomeHandler exposes a home server over HTTP.
func HomeHandler(home *homeserver.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExecQuery, func(w http.ResponseWriter, r *http.Request) {
		var sq wire.SealedQuery
		if err := readGob(r.Body, &sq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, empty, scanned, err := home.ExecQuery(sq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeGob(w, ExecQueryResponse{Result: res, Empty: empty, Scanned: scanned})
	})
	mux.HandleFunc("POST "+PathExecUpdate, func(w http.ResponseWriter, r *http.Request) {
		var su wire.SealedUpdate
		if err := readGob(r.Body, &su); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := home.ExecUpdate(su)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeGob(w, ExecUpdateResponse{Affected: n})
	})
	return mux
}

// NodeServer serves an application's traffic from a DSSP node, forwarding
// misses and updates to the home server.
type NodeServer struct {
	Node    *dssp.Node
	HomeURL string
	Client  *http.Client
}

// NewNodeServer wires a node to its home server endpoint.
func NewNodeServer(node *dssp.Node, homeURL string, client *http.Client) *NodeServer {
	if client == nil {
		client = http.DefaultClient
	}
	return &NodeServer{Node: node, HomeURL: homeURL, Client: client}
}

// Handler returns the node's HTTP API.
func (s *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+PathUpdate, s.handleUpdate)
	mux.HandleFunc("GET "+PathStats, func(w http.ResponseWriter, r *http.Request) {
		writeGob(w, s.Node.Cache.Stats())
	})
	return mux
}

func (s *NodeServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var sq wire.SealedQuery
	if err := readGob(r.Body, &sq); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if res, hit := s.Node.HandleQuery(sq); hit {
		writeGob(w, QueryResponse{Result: res, Hit: true})
		return
	}
	var exec ExecQueryResponse
	if err := post(s.Client, s.HomeURL+PathExecQuery, sq, &exec); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	s.Node.StoreResult(sq, exec.Result, exec.Empty)
	writeGob(w, QueryResponse{Result: exec.Result})
}

func (s *NodeServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var su wire.SealedUpdate
	if err := readGob(r.Body, &su); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var exec ExecUpdateResponse
	if err := post(s.Client, s.HomeURL+PathExecUpdate, su, &exec); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	invalidated := s.Node.OnUpdateCompleted(su)
	writeGob(w, UpdateResponse{Affected: exec.Affected, Invalidated: invalidated})
}

// Client is the trusted application side talking to a remote DSSP node:
// it seals statements with the application's keyring, sends them to the
// node, and opens the (possibly encrypted) results.
type Client struct {
	Codec   *wire.Codec
	NodeURL string
	HTTP    *http.Client
}

// NewClient builds a remote client.
func NewClient(codec *wire.Codec, nodeURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{Codec: codec, NodeURL: nodeURL, HTTP: httpClient}
}

// Query runs one query template instance through the remote node.
func (c *Client) Query(t *template.Template, params ...interface{}) (*dssp.QueryResult, error) {
	vals, err := dssp.Params(params...)
	if err != nil {
		return nil, err
	}
	sq, err := c.Codec.SealQuery(t, vals)
	if err != nil {
		return nil, err
	}
	var resp QueryResponse
	if err := post(c.HTTP, c.NodeURL+PathQuery, sq, &resp); err != nil {
		return nil, err
	}
	res, err := c.Codec.OpenResult(resp.Result)
	if err != nil {
		return nil, err
	}
	return &dssp.QueryResult{Result: res, Outcome: dssp.QueryOutcome{Hit: resp.Hit, Rows: res.Len()}}, nil
}

// Update routes one update through the remote node.
func (c *Client) Update(t *template.Template, params ...interface{}) (affected, invalidated int, err error) {
	vals, err := dssp.Params(params...)
	if err != nil {
		return 0, 0, err
	}
	su, err := c.Codec.SealUpdate(t, vals)
	if err != nil {
		return 0, 0, err
	}
	var resp UpdateResponse
	if err := post(c.HTTP, c.NodeURL+PathUpdate, su, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Affected, resp.Invalidated, nil
}
