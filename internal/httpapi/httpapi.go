// Package httpapi provides a network deployment of the DSSP architecture:
// the caching node and the home server as HTTP services, and a client that
// seals statements locally and talks to a node. The paper's Figure 1
// topology — clients near a DSSP node, the node far from the home server —
// becomes three processes connected by HTTP.
//
// Messages are the sealed types of package wire, gob-encoded. The node
// never holds keys: it receives sealed queries, serves them from its cache
// or forwards the opaque payload to the home server, and monitors
// completed updates for invalidation, exactly as in the in-process
// pathway.
//
// Every process exposes GET /v1/metrics — a snapshot of its obs.Registry
// in JSON (default) or the Prometheus text exposition format
// (?format=prom, or Accept: text/plain). Requests carry their wire-level
// trace ID in the X-DSSP-Trace header, so one statement can be followed
// from client through node to home server.
package httpapi

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssp/internal/cache"
	"dssp/internal/dssp"
	"dssp/internal/homeserver"
	"dssp/internal/obs"
	"dssp/internal/pipeline"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// DefaultTimeout bounds each HTTP round trip when the caller does not
// supply its own http.Client: a hung home server fails the request
// instead of hanging the client forever.
const DefaultTimeout = 30 * time.Second

// retryBackoff is the pause before the single idempotent-query retry.
const retryBackoff = 100 * time.Millisecond

// defaultClient returns client, or a timeout-bounded default.
func defaultClient(client *http.Client) *http.Client {
	if client == nil {
		return &http.Client{Timeout: DefaultTimeout}
	}
	return client
}

// Paths of the HTTP API.
const (
	PathQuery           = "/v1/query"            // node and router: sealed query -> sealed result
	PathUpdate          = "/v1/update"           // node and router: sealed update -> ack
	PathInvalidate      = "/v1/invalidate"       // node: already-confirmed sealed update -> invalidation ack (router fan-out)
	PathDecisions       = "/v1/decisions"        // node: invalidation-decision log + cache dump, JSON (debugging, parity checks)
	PathMetrics         = "/v1/metrics"          // every process: metrics snapshot (JSON or Prometheus text)
	PathTrace           = "/v1/trace/"           // every process: one trace's spans, JSON ({id} appended)
	PathTraces          = "/v1/traces"           // every process: retained trace IDs, JSON
	PathBucketExport    = "/v1/buckets/export"   // node: template-ID list -> sealed bucket entries (warm handoff)
	PathBucketImport    = "/v1/buckets/import"   // node: sealed bucket entries -> imported count
	PathBucketDrop      = "/v1/buckets/drop"     // node: template-ID list -> dropped count (post-flip cleanup)
	PathRing            = "/v1/ring"             // router: current membership + epoch, JSON
	PathRingJoin        = "/v1/ring/join"        // router: admit a node URL into the ring (warm by default)
	PathRingLeave       = "/v1/ring/leave"       // router: retire a node (warm drain) or declare it dead (warm=false)
	PathExecQuery       = "/v1/exec/query"       // home primary and replicas: sealed query -> sealed result
	PathExecUpdate      = "/v1/exec/update"      // home primary: sealed update -> ack
	PathReplicaApply    = "/v1/replica/apply"    // replica: confirmed-update batch -> applied watermark
	PathReplicaStatus   = "/v1/replica/status"   // replica: applied watermark, JSON
	PathReplicaRegister = "/v1/replica/register" // home primary: subscribe a replica to the confirmed stream, JSON
	PathReplicas        = "/v1/replicas"         // home primary: registered replicas + acked sequences, JSON
)

// TraceHeader carries the request's trace ID between processes;
// SpanParentHeader carries the sender's in-progress span ID, so the
// receiver's spans nest under it when the sealed message predates (or
// lost) its embedded ParentSpan field.
const (
	TraceHeader      = "X-DSSP-Trace"
	SpanParentHeader = "X-DSSP-Span-Parent"
)

// Staleness headers of the replicated home tier. ConfirmSeqHeader rides
// the router's invalidation fan-out: the fanned-out update's confirmed
// home sequence, which raises the target node's freshness floor.
// MinSeqHeader rides node→replica queries: the node's floor, below which
// the replica must not answer. AppliedHeader rides every replica
// response: the replica's applied watermark (on a 409 refusal it tells
// the node how far behind the replica is).
// PartitionHeader rides replica 409 refusals: the home partition whose
// stream the applied watermark positions the replica in.
const (
	ConfirmSeqHeader = "X-DSSP-Confirm-Seq"
	MinSeqHeader     = "X-DSSP-Min-Seq"
	AppliedHeader    = "X-DSSP-Replica-Applied"
	PartitionHeader  = "X-DSSP-Partition"
)

// QueryResponse is the node's answer to a sealed query.
type QueryResponse struct {
	Result wire.SealedResult
	Hit    bool
}

// UpdateResponse is the node's answer to a sealed update. Seq is the
// update's confirmed sequence in the home server's serialization order
// (0 from pre-sequencing nodes).
type UpdateResponse struct {
	Affected    int
	Invalidated int
	Seq         uint64
}

// InvalidateResponse is the node's answer to a fanned-out invalidation:
// the update was confirmed elsewhere and this node only monitored it.
type InvalidateResponse struct {
	Invalidated int
}

// DecisionsResponse is a node's invalidation-decision log and cache
// fingerprint, served as JSON from PathDecisions so deployment checks
// (the scale-out smoke test) can diff node state without process access.
type DecisionsResponse struct {
	Decisions []cache.Decision `json:"decisions"`
	Dump      []string         `json:"dump"`
	Stats     cache.Stats      `json:"stats"`
}

// BucketImportResponse is the node's answer to a migration import: how
// many sealed entries it took (keys it already held are skipped).
type BucketImportResponse struct {
	Imported int `json:"imported"`
}

// BucketDropResponse is the node's answer to a post-flip bucket drop.
type BucketDropResponse struct {
	Dropped int `json:"dropped"`
}

// ExecQueryResponse is the home server's answer to a forwarded query.
type ExecQueryResponse struct {
	Result  wire.SealedResult
	Empty   bool
	Scanned int
}

// ExecUpdateResponse is the home server's answer to a forwarded update.
type ExecUpdateResponse struct {
	Affected int
	Seq      uint64
}

// gobBufPool recycles the staging buffers gob encoding writes into, so
// the per-request buffer (and its growth to the message size) is not
// re-allocated on every exchange. Buffers that grew past maxPooledGobBuf
// are dropped instead of pinned in the pool.
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledGobBuf = 64 << 10

func getGobBuf() *bytes.Buffer { return gobBufPool.Get().(*bytes.Buffer) }

func putGobBuf(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledGobBuf {
		return
	}
	buf.Reset()
	gobBufPool.Put(buf)
}

// writeGob writes a gob response body. A failed Write means the client
// saw a truncated response; that cannot be repaired at this point (the
// status line is gone), but it must not be invisible — it is logged and
// counted under http_write_errors in reg (nil skips the counter).
func writeGob(reg *obs.Registry, w http.ResponseWriter, v any) {
	buf := getGobBuf()
	defer putGobBuf(buf)
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	if _, err := w.Write(buf.Bytes()); err != nil {
		slog.Warn("httpapi: response write failed", "bytes", buf.Len(), "err", err)
		if reg != nil {
			reg.Counter(obs.MHTTPWriteErrors).Inc()
		}
	}
}

func readGob(r io.Reader, v any) error {
	return gob.NewDecoder(r).Decode(v)
}

// post sends one gob request with the trace ID attached and decodes the
// gob response. hdrs carries extra request headers (nil for none — e.g.
// the confirmed-sequence staleness header on invalidation fan-out). The
// context bounds the whole round trip. When idempotent is true (query
// paths only), a connection-level error is retried once after a short
// backoff — a response that arrived, whatever its status, is never
// retried, and updates never are (a lost ack does not prove the update
// was not applied). reg, when non-nil, counts retries.
func post(ctx context.Context, client *http.Client, url, trace, parent string, hdrs http.Header, req, resp any, idempotent bool, reg *obs.Registry) error {
	body, err := encodeGob(req)
	if err != nil {
		return err
	}
	r, err := doPost(ctx, client, url, trace, parent, hdrs, body)
	if err != nil && idempotent && ctx.Err() == nil {
		if reg != nil {
			reg.Counter(obs.MHTTPRetries).Inc()
		}
		select {
		case <-time.After(retryBackoff):
		case <-ctx.Done():
			return err
		}
		r, err = doPost(ctx, client, url, trace, parent, hdrs, body)
	}
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
		return fmt.Errorf("httpapi: %s: %s: %s", url, r.Status, bytes.TrimSpace(msg))
	}
	return readGob(r.Body, resp)
}

// encodeGob stages the encoding in a pooled buffer and copies out a
// right-sized body: the caller retains the bytes across retries, so they
// cannot alias the recycled buffer.
func encodeGob(v any) ([]byte, error) {
	buf := getGobBuf()
	defer putGobBuf(buf)
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	return body, nil
}

// doPost performs one HTTP exchange; the body is a byte slice so retries
// can resend it.
func doPost(ctx context.Context, client *http.Client, url, trace, parent string, hdrs http.Header, body []byte) (*http.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/x-gob")
	if trace != "" {
		hreq.Header.Set(TraceHeader, trace)
	}
	if parent != "" {
		hreq.Header.Set(SpanParentHeader, parent)
	}
	for k, vs := range hdrs {
		for _, v := range vs {
			hreq.Header.Add(k, v)
		}
	}
	return client.Do(hreq)
}

// postBytes sends one raw (non-gob) request body and returns the raw
// response body. It is the migration stream's transport: bucket exports,
// imports, and drops are all idempotent (exports copy, imports skip keys
// the cache already holds, drops of an absent bucket are no-ops), so a
// connection-level error is retried once like an idempotent query.
func postBytes(ctx context.Context, client *http.Client, url string, body []byte, reg *obs.Registry) ([]byte, error) {
	do := func() (*http.Response, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/octet-stream")
		return client.Do(hreq)
	}
	r, err := do()
	if err != nil && ctx.Err() == nil {
		if reg != nil {
			reg.Counter(obs.MHTTPRetries).Inc()
		}
		select {
		case <-time.After(retryBackoff):
		case <-ctx.Done():
			return nil, err
		}
		r, err = do()
	}
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	raw, rerr := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: %s: %s: %s", url, r.Status, bytes.TrimSpace(raw))
	}
	return raw, rerr
}

// MetricsHandler serves a registry snapshot: JSON by default, Prometheus
// text exposition format when ?format=prom is given or the Accept header
// asks for text/plain.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		format := r.URL.Query().Get("format")
		accept := r.Header.Get("Accept")
		if format == "prom" || format == "prometheus" ||
			(format == "" && (strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics"))) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	})
}

// TracesResponse lists the trace IDs a process's span store retains,
// oldest first.
type TracesResponse struct {
	Traces []string `json:"traces"`
}

// TraceHandler serves one trace's spans from a process's span store as
// JSON ({id} path parameter). Unknown or evicted traces answer 404; a
// process without a store answers 404 for everything.
func TraceHandler(store *obs.SpanStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := store.Trace(r.PathValue("id"))
		if len(spans) == 0 {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spans)
	})
}

// TraceIDsHandler serves the span store's retained trace IDs as JSON.
func TraceIDsHandler(store *obs.SpanStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TracesResponse{Traces: store.TraceIDs(obs.DefaultStoreTraces)})
	})
}

// FetchTrace retrieves one trace's spans from a process's /v1/trace
// endpoint. A 404 (trace unknown there) returns an empty slice and no
// error, so callers can sweep a whole fleet and stitch what they get.
func FetchTrace(client *http.Client, baseURL, traceID string) ([]obs.SpanRecord, error) {
	client = defaultClient(client)
	resp, err := client.Get(baseURL + PathTrace + traceID)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: %s%s%s: %s", baseURL, PathTrace, traceID, resp.Status)
	}
	var spans []obs.SpanRecord
	err = json.NewDecoder(resp.Body).Decode(&spans)
	return spans, err
}

// FetchTraceIDs retrieves the trace IDs a process retains.
func FetchTraceIDs(client *http.Client, baseURL string) ([]string, error) {
	client = defaultClient(client)
	resp, err := client.Get(baseURL + PathTraces)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: %s%s: %s", baseURL, PathTraces, resp.Status)
	}
	var tr TracesResponse
	err = json.NewDecoder(resp.Body).Decode(&tr)
	return tr.Traces, err
}

// StitchFleet fetches one trace from every process of a fleet (client-
// side spans may be passed in local) and stitches the union into one
// tree. Processes that never saw the trace contribute nothing.
func StitchFleet(client *http.Client, baseURLs []string, traceID string, local []obs.SpanRecord) (obs.StitchedTrace, error) {
	all := append([]obs.SpanRecord(nil), local...)
	for _, base := range baseURLs {
		spans, err := FetchTrace(client, base, traceID)
		if err != nil {
			return obs.StitchedTrace{}, err
		}
		all = append(all, spans...)
	}
	stitched := obs.Stitch(all)
	if len(stitched) == 0 {
		return obs.StitchedTrace{Trace: traceID}, nil
	}
	return stitched[0], nil
}

// FetchMetrics retrieves a process's /v1/metrics snapshot as JSON.
func FetchMetrics(client *http.Client, baseURL string) (obs.Snapshot, error) {
	client = defaultClient(client)
	var snap obs.Snapshot
	resp, err := client.Get(baseURL + PathMetrics)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("httpapi: %s%s: %s", baseURL, PathMetrics, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// HomeHandler exposes a home server over HTTP, including its metrics and
// traces. Building the handler attaches a span store to the home tracer,
// so the home-side spans (admission_wait, home_exec) of every trace are
// servable; call it after SetObs, which replaces the tracer.
func HomeHandler(home *homeserver.Server) http.Handler {
	return HomeHandlerWithHub(home, nil)
}

// HomeHandlerWithHub is HomeHandler for a primary fronting read replicas:
// hub (non-nil) adds the replica-registration endpoints, and registered
// replicas receive every confirmed-update batch the moment the monitoring
// gate releases it.
func HomeHandlerWithHub(home *homeserver.Server, hub *ReplicaHub) http.Handler {
	home.Tracer().SetStore(obs.NewSpanStore(0))
	mux := http.NewServeMux()
	mux.Handle("GET "+PathMetrics, MetricsHandler(home.Obs()))
	mux.Handle("GET "+PathTraces, TraceIDsHandler(home.Tracer().Store()))
	mux.Handle("GET "+PathTrace+"{id}", TraceHandler(home.Tracer().Store()))
	mux.HandleFunc("POST "+PathExecQuery, func(w http.ResponseWriter, r *http.Request) {
		var sq wire.SealedQuery
		if err := readGob(r.Body, &sq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, empty, scanned, err := home.ExecQuery(sq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeGob(home.Obs(), w, ExecQueryResponse{Result: res, Empty: empty, Scanned: scanned})
	})
	mux.HandleFunc("POST "+PathExecUpdate, func(w http.ResponseWriter, r *http.Request) {
		var su wire.SealedUpdate
		if err := readGob(r.Body, &su); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, seq, err := home.ExecUpdate(su)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeGob(home.Obs(), w, ExecUpdateResponse{Affected: n, Seq: seq})
	})
	if hub != nil {
		mux.HandleFunc("POST "+PathReplicaRegister, func(w http.ResponseWriter, r *http.Request) {
			var req ReplicaRegisterRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
				http.Error(w, "replica register: need JSON body {\"url\": ...}", http.StatusBadRequest)
				return
			}
			hub.Register(req.URL)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(hub.Status())
		})
		mux.HandleFunc("GET "+PathReplicas, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(hub.Status())
		})
	}
	return mux
}

// NodeServer serves an application's traffic from a DSSP node through the
// shared pipeline, forwarding misses and updates to the home server over
// HTTP.
type NodeServer struct {
	Node    *dssp.Node
	HomeURL string
	Client  *http.Client

	// Reg is the node's registry — shared with the node's cache — and
	// Tracer records the node-side stages (cache_lookup, network,
	// invalidate) against wall time.
	Reg    *obs.Registry
	Tracer *obs.Tracer

	// Pipe is the node's query/update pathway: the same pipeline the
	// in-process client and the simulator route through, here over an
	// HTTP transport with per-request contexts and timeouts.
	Pipe *pipeline.Pipeline
}

// httpTransport forwards sealed messages to the home server over HTTP.
// Queries are idempotent and retried once on connection errors; updates
// are not.
type httpTransport struct {
	client  *http.Client
	homeURL string
	reg     *obs.Registry
}

func (t httpTransport) ExecQuery(ctx context.Context, sq wire.SealedQuery, done func(pipeline.ExecQueryResult, error)) {
	var exec ExecQueryResponse
	err := post(ctx, t.client, t.homeURL+PathExecQuery, sq.TraceID, sq.ParentSpan, nil, sq, &exec, true, t.reg)
	done(pipeline.ExecQueryResult{Result: exec.Result, Empty: exec.Empty, Scanned: exec.Scanned}, err)
}

func (t httpTransport) ExecUpdate(ctx context.Context, su wire.SealedUpdate, done func(pipeline.ExecUpdateResult, error)) {
	var exec ExecUpdateResponse
	err := post(ctx, t.client, t.homeURL+PathExecUpdate, su.TraceID, su.ParentSpan, nil, su, &exec, false, t.reg)
	done(pipeline.ExecUpdateResult{Affected: exec.Affected, Seq: exec.Seq}, err)
}

// NodeOptions tune a node server beyond its wiring.
type NodeOptions struct {
	// MonitorInterval batches the node's invalidation per monitoring
	// interval: confirmed updates accumulate and are applied to the cache
	// together when the interval expires, amortizing bucket walks. 0
	// invalidates inline per update.
	MonitorInterval time.Duration

	// NodeID labels this node's spans in stitched traces (fleet member
	// name; empty for a singleton deployment).
	NodeID string

	// Leakage, when set, audits the sealed traffic at this node's trust
	// boundary (the adversary's-eye measurement; nil disables).
	Leakage pipeline.LeakageObserver

	// HomeReplicaURLs lists home read-replica endpoints this node may
	// serve misses from. Non-empty, the node's transport becomes a
	// pipeline.ReplicaSet: updates still go to HomeURL (the primary);
	// misses spread across the replicas, subject to the node's freshness
	// floor, with primary fallback when a replica lags or fails.
	// Shorthand for a one-partition PartitionReplicaURLs.
	HomeReplicaURLs []string

	// HomePartitionURLs, when set, declares a partitioned home tier: the
	// full list of partition primaries in partition order (entry 0 should
	// equal the homeURL argument). Statements route to the partition
	// owning their table group, and the node's freshness floor becomes a
	// per-partition vector sized to this list.
	HomePartitionURLs []string

	// PartitionReplicaURLs lists each partition's read replicas, index-
	// aligned with HomePartitionURLs. Partitions may have zero replicas
	// (misses go to that partition's primary); a short or nil list leaves
	// the remaining partitions replica-less.
	PartitionReplicaURLs [][]string
}

// NewNodeServer wires a node to its home server endpoint. The server
// adopts the node cache's registry so cache counters and node-side stage
// histograms appear in one /v1/metrics snapshot. A nil client gets a
// DefaultTimeout-bounded one.
func NewNodeServer(node *dssp.Node, homeURL string, client *http.Client) *NodeServer {
	return NewNodeServerWithOptions(node, homeURL, client, NodeOptions{})
}

// NewNodeServerWithOptions is NewNodeServer with tuning options.
func NewNodeServerWithOptions(node *dssp.Node, homeURL string, client *http.Client, opts NodeOptions) *NodeServer {
	client = defaultClient(client)
	reg := node.Cache.Obs()
	tracer := obs.NewTracer(reg, obs.WallClock()).
		SetIdentity(obs.ProcNode, opts.NodeID).
		SetStore(obs.NewSpanStore(0))
	popts := pipeline.Options{MonitorInterval: opts.MonitorInterval, Leakage: opts.Leakage}
	primaries := opts.HomePartitionURLs
	if len(primaries) == 0 {
		primaries = []string{homeURL}
	}
	replicas := opts.PartitionReplicaURLs
	if replicas == nil && len(opts.HomeReplicaURLs) > 0 {
		replicas = [][]string{opts.HomeReplicaURLs}
	}
	anyReplicas := false
	for _, urls := range replicas {
		if len(urls) > 0 {
			anyReplicas = true
			break
		}
	}
	// The freshness vector exists only when something consumes it — a
	// replica set checking floors, or a partitioned tier tracking each
	// partition's stream — so the singleton deployment keeps its shape.
	if len(primaries) > 1 || anyReplicas {
		popts.Fresh = pipeline.NewFreshnessParts(len(primaries))
	}
	parts := make([]pipeline.Transport, len(primaries))
	for p, u := range primaries {
		var tr pipeline.Transport = httpTransport{client: client, homeURL: u, reg: reg}
		if p < len(replicas) && len(replicas[p]) > 0 {
			eps := make([]pipeline.ReplicaEndpoint, len(replicas[p]))
			for i, ru := range replicas[p] {
				eps[i] = pipeline.ReplicaEndpoint{Name: ru, Backend: replicaProxy{url: ru, part: p, client: client}}
			}
			tr = pipeline.NewReplicaSet(tr, eps, popts.Fresh, reg)
		}
		parts[p] = tr
	}
	transport := pipeline.NewPartitionedTransport(parts)
	return &NodeServer{
		Node:    node,
		HomeURL: homeURL,
		Client:  client,
		Reg:     reg,
		Tracer:  tracer,
		Pipe:    pipeline.New(node, transport, tracer, popts),
	}
}

// Handler returns the node's HTTP API.
func (s *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathQuery, s.handleQuery)
	mux.HandleFunc("POST "+PathUpdate, s.handleUpdate)
	mux.HandleFunc("POST "+PathInvalidate, s.handleInvalidate)
	mux.HandleFunc("POST "+PathBucketExport, s.handleBucketExport)
	mux.HandleFunc("POST "+PathBucketImport, s.handleBucketImport)
	mux.HandleFunc("POST "+PathBucketDrop, s.handleBucketDrop)
	mux.HandleFunc("GET "+PathDecisions, s.handleDecisions)
	mux.Handle("GET "+PathMetrics, MetricsHandler(s.Reg))
	mux.Handle("GET "+PathTraces, TraceIDsHandler(s.Tracer.Store()))
	mux.Handle("GET "+PathTrace+"{id}", TraceHandler(s.Tracer.Store()))
	return mux
}

// trace picks the request's trace ID: the sealed message's, or the HTTP
// header when the message predates tracing.
func trace(sealed string, r *http.Request) string {
	if sealed != "" {
		return sealed
	}
	return r.Header.Get(TraceHeader)
}

// spanParent picks the request's parent span ID: the sealed message's, or
// the HTTP header.
func spanParent(sealed string, r *http.Request) string {
	if sealed != "" {
		return sealed
	}
	return r.Header.Get(SpanParentHeader)
}

func (s *NodeServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var sq wire.SealedQuery
	if err := readGob(r.Body, &sq); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sq.TraceID = trace(sq.TraceID, r)
	sq.ParentSpan = spanParent(sq.ParentSpan, r)
	reply, err := s.Pipe.QuerySync(r.Context(), sq)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeGob(s.Reg, w, QueryResponse{Result: reply.Result, Hit: reply.Hit})
}

// handleInvalidate monitors an update that was already confirmed at the
// home server through some other node: the shard router's pruned
// invalidation fan-out. The node never re-executes it — the sealed update
// goes straight into the pipeline's invalidation monitor, joining the
// current batch when a monitoring interval is configured.
func (s *NodeServer) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	var su wire.SealedUpdate
	if err := readGob(r.Body, &su); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	su.TraceID = trace(su.TraceID, r)
	su.ParentSpan = spanParent(su.ParentSpan, r)
	// The fan-out's staleness header carries the update's confirmed home
	// sequence; it raises this node's freshness floor (when the node
	// fronts replicas) before invalidation runs, so no later miss is
	// served by a replica that hasn't applied the update.
	seq, _ := strconv.ParseUint(r.Header.Get(ConfirmSeqHeader), 10, 64)
	ch := make(chan int, 1)
	s.Pipe.MonitorUpdate(su, seq, func(invalidated int) { ch <- invalidated })
	select {
	case n := <-ch:
		writeGob(s.Reg, w, InvalidateResponse{Invalidated: n})
	case <-r.Context().Done():
		http.Error(w, r.Context().Err().Error(), http.StatusGatewayTimeout)
	}
}

// handleBucketExport streams the named template buckets' sealed entries
// out for a warm handoff. The request body is a wire template-ID list,
// the response the wire migration encoding — no gob, no keys, nothing
// the node did not already hold sealed.
func (s *NodeServer) handleBucketExport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ids, err := wire.DecodeTemplateIDs(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	entries := s.Node.Cache.ExportBuckets(ids)
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(wire.AppendBucketEntries(nil, entries)); err != nil {
		slog.Warn("httpapi: bucket export write failed", "entries", len(entries), "err", err)
		s.Reg.Counter(obs.MHTTPWriteErrors).Inc()
	}
}

// handleBucketImport takes migrated sealed entries into the node's cache.
func (s *NodeServer) handleBucketImport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	entries, err := wire.DecodeBucketEntries(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BucketImportResponse{Imported: s.Node.Cache.ImportBuckets(entries)})
}

// handleBucketDrop removes migrated buckets after the epoch flip.
func (s *NodeServer) handleBucketDrop(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ids, err := wire.DecodeTemplateIDs(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BucketDropResponse{Dropped: s.Node.Cache.DropBuckets(ids)})
}

// handleDecisions serves the node's decision log, cache dump, and counter
// snapshot as JSON.
func (s *NodeServer) handleDecisions(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(DecisionsResponse{
		Decisions: s.Node.Cache.Decisions(),
		Dump:      s.Node.Cache.Dump(),
		Stats:     s.Node.Cache.Stats(),
	})
}

func (s *NodeServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var su wire.SealedUpdate
	if err := readGob(r.Body, &su); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	su.TraceID = trace(su.TraceID, r)
	su.ParentSpan = spanParent(su.ParentSpan, r)
	reply, err := s.Pipe.UpdateSync(r.Context(), su)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeGob(s.Reg, w, UpdateResponse{Affected: reply.Affected, Invalidated: reply.Invalidated, Seq: reply.Seq})
}

// Client is the trusted application side talking to a remote DSSP node:
// it seals statements with the application's keyring, sends them to the
// node, and opens the (possibly encrypted) results.
type Client struct {
	Codec   *wire.Codec
	NodeURL string
	HTTP    *http.Client

	// Tracer, when set, records the trusted-side stages (seal, open) of
	// every statement. nil disables client-side tracing; the node and
	// home server instrument their own sides regardless.
	Tracer *obs.Tracer
}

// NewClient builds a remote client. A nil httpClient gets a
// DefaultTimeout-bounded one.
func NewClient(codec *wire.Codec, nodeURL string, httpClient *http.Client) *Client {
	return &Client{Codec: codec, NodeURL: nodeURL, HTTP: defaultClient(httpClient)}
}

// Query runs one query template instance through the remote node. The
// context bounds the round trip; connection errors are retried once
// (queries are idempotent).
func (c *Client) Query(ctx context.Context, t *template.Template, params ...interface{}) (*dssp.QueryResult, error) {
	vals, err := dssp.Params(params...)
	if err != nil {
		return nil, err
	}
	start := c.Tracer.Now()
	sq, err := c.Codec.SealQuery(t, vals)
	if err != nil {
		return nil, err
	}
	// The seal span is the trace's root; every downstream hop nests under
	// it via the sealed message's ParentSpan / the span-parent header.
	sq.ParentSpan = c.Tracer.ObserveSpan(obs.SpanRecord{
		Trace: sq.TraceID, Stage: obs.StageSeal, Template: t.ID,
		Start: start, Duration: c.Tracer.Now() - start,
	})
	var resp QueryResponse
	if err := post(ctx, c.HTTP, c.NodeURL+PathQuery, sq.TraceID, sq.ParentSpan, nil, sq, &resp, true, c.Tracer.Registry()); err != nil {
		return nil, err
	}
	op := c.Tracer.Start(sq.TraceID, obs.StageOpen, t.ID)
	res, err := c.Codec.OpenResult(resp.Result)
	if err != nil {
		return nil, err
	}
	op.End()
	return &dssp.QueryResult{Result: res, Outcome: dssp.QueryOutcome{Hit: resp.Hit, Rows: res.Len()}}, nil
}

// Update routes one update through the remote node. The context bounds
// the round trip; updates are never retried (a lost ack does not prove
// the update was not applied).
func (c *Client) Update(ctx context.Context, t *template.Template, params ...interface{}) (affected, invalidated int, err error) {
	vals, err := dssp.Params(params...)
	if err != nil {
		return 0, 0, err
	}
	start := c.Tracer.Now()
	su, err := c.Codec.SealUpdate(t, vals)
	if err != nil {
		return 0, 0, err
	}
	su.ParentSpan = c.Tracer.ObserveSpan(obs.SpanRecord{
		Trace: su.TraceID, Stage: obs.StageSeal, Template: t.ID,
		Start: start, Duration: c.Tracer.Now() - start,
	})
	var resp UpdateResponse
	if err := post(ctx, c.HTTP, c.NodeURL+PathUpdate, su.TraceID, su.ParentSpan, nil, su, &resp, false, c.Tracer.Registry()); err != nil {
		return 0, 0, err
	}
	return resp.Affected, resp.Invalidated, nil
}
