// Package wire defines the messages that flow between the application's
// trusted side (clients/home organization, which hold the encryption keys)
// and the untrusted DSSP (Figure 2 of the paper): queries, updates, and
// query results, each sealed according to the exposure level of its
// template.
//
// Exposure levels determine what the DSSP can see (§2.3):
//
//	blind:    nothing — the lookup key is a deterministic token of the
//	          whole statement.
//	template: the template identity — parameters are replaced by a
//	          deterministic token.
//	stmt:     template and parameters in the clear; results encrypted.
//	view:     statement and result in the clear (queries only).
//
// Every message also carries an opaque, strongly encrypted payload that
// only the home organization can open; the DSSP forwards it verbatim on
// cache misses and for updates.
//
// # Encoding
//
// Statements, parameters, and results are encoded with a hand-rolled
// deterministic binary format (values.go) instead of gob: sealing sits on
// the per-query hot path, and the encoding doubles as cache-key material,
// so it must be canonical (equal inputs, equal bytes) and injective
// (distinct inputs, distinct bytes). Gob was neither cheap — a fresh
// encoder, type registry walk, and several buffer copies per message —
// nor did the previous NUL-separated parameter rendering distinguish
// every input (a FLOAT and an INT rendering to the same decimal string
// collided, and nothing length-delimited string values). Every value is
// now kind-tagged and length-delimited, which makes the whole encoding
// injective by construction.
//
// All encode scratch comes from a package-level buffer pool; sealed
// outputs (Opaque, Cipher, Key) are freshly allocated or immutable
// strings, owned by the caller, and never alias pooled memory.
package wire

import (
	"fmt"

	"dssp/internal/encrypt"
	"dssp/internal/engine"
	"dssp/internal/obs"
	"dssp/internal/sqlparse"
	"dssp/internal/template"
)

// Domain labels for deterministic encryption, separating statement,
// parameter, and result spaces.
const (
	domStmt   = "stmt"
	domParams = "params"
	domResult = "result"
	domOpaque = "opaque"
)

// SealedQuery is a query as the DSSP sees it.
type SealedQuery struct {
	Exposure template.Exposure

	// TraceID identifies this request across client, node, and home
	// server. It is observability metadata, not part of the cache key,
	// and reveals nothing about the statement.
	TraceID string

	// ParentSpan is the span ID of the upstream hop's in-progress stage:
	// each process records its spans under it and overwrites it with its
	// own span ID before forwarding, so the fleet's spans stitch into one
	// tree. Like TraceID, it is observability metadata only.
	ParentSpan string

	// TemplateID is exposed at template exposure and above.
	TemplateID string

	// Group is the statement's table group (see schema.DeriveGroups): the
	// routing hint the partitioned home tier needs to steer this query to
	// the partition owning its tables. It is stamped at every exposure
	// level — the group assignment is derived from the schema and template
	// set, which the DSSP already holds, but at blind exposure the hint
	// does narrow the statement to one table group's templates; that is
	// the (documented) price of partition routing, exactly as the sealed
	// key's determinism is the price of caching.
	Group int

	// Params are exposed at stmt exposure and above.
	Params []sqlparse.Value

	// Key is the deterministic cache lookup key (§2.3 footnote 3).
	Key string

	// Opaque is the encrypted statement payload for the home server.
	Opaque []byte
}

// SealedUpdate is an update as the DSSP sees it. Updates have no view
// level.
type SealedUpdate struct {
	Exposure   template.Exposure
	TraceID    string // observability metadata, as in SealedQuery
	ParentSpan string // observability metadata, as in SealedQuery
	TemplateID string
	Group      int // table-group routing hint, as in SealedQuery
	Params     []sqlparse.Value
	Opaque     []byte
}

// SealedResult is a query result as cached by the DSSP: plaintext at view
// exposure, ciphertext otherwise.
type SealedResult struct {
	Result *engine.Result // non-nil iff the query's exposure is view
	Cipher []byte
}

// Codec seals and opens messages. It lives on the trusted side: clients
// seal queries and updates; the home server opens them and seals results.
type Codec struct {
	app  *template.App
	kr   *encrypt.Keyring
	exps map[string]template.Exposure

	// groups assigns each template its table group (via its relations) —
	// the partition-routing hint stamped into every sealed message.
	groups map[string]int
}

// NewCodec builds a codec for an application under an exposure assignment
// (template ID -> exposure level). Templates missing from the assignment
// default to full exposure.
func NewCodec(app *template.App, kr *encrypt.Keyring, exps map[string]template.Exposure) *Codec {
	g := template.AppGroups(app)
	groups := make(map[string]int, len(app.Queries)+len(app.Updates))
	for _, t := range app.Queries {
		groups[t.ID] = template.GroupOf(g, t)
	}
	for _, t := range app.Updates {
		groups[t.ID] = template.GroupOf(g, t)
	}
	return &Codec{app: app, kr: kr, exps: exps, groups: groups}
}

// GroupOf reports the table group stamped into sealed instances of a
// template.
func (c *Codec) GroupOf(t *template.Template) int { return c.groups[t.ID] }

// ExposureOf returns the configured exposure of a template.
func (c *Codec) ExposureOf(t *template.Template) template.Exposure {
	if e, ok := c.exps[t.ID]; ok {
		return e
	}
	return template.MaxExposure(t.Kind)
}

// SealQuery prepares a query instance for the DSSP.
func (c *Codec) SealQuery(t *template.Template, params []sqlparse.Value) (SealedQuery, error) {
	if t.Kind != template.KQuery {
		return SealedQuery{}, fmt.Errorf("wire: %s is not a query template", t.ID)
	}
	exp := c.ExposureOf(t)
	eb := getBuf()
	eb.b = appendPayload(eb.b[:0], t.ID, params)
	sq := SealedQuery{Exposure: exp, TraceID: obs.NewTraceID(), Group: c.groups[t.ID], Opaque: c.kr.Seal(domOpaque, eb.b)}
	switch exp {
	case template.ExpBlind:
		// The encrypted statement is the lookup key: the whole statement
		// (length-prefixed SQL, then the parameter encoding) in one pass
		// through the pooled buffer.
		eb.b = appendStmt(eb.b[:0], t.SQL, params)
		sq.Key = c.kr.Token(domStmt, eb.b)
	case template.ExpTemplate:
		sq.TemplateID = t.ID
		eb.b = appendParams(eb.b[:0], params)
		sq.Key = t.ID + "\x00" + c.kr.Token(domParams, eb.b)
	default: // stmt or view
		sq.TemplateID = t.ID
		sq.Params = params
		eb.b = append(append(eb.b[:0], t.ID...), 0)
		eb.b = appendParams(eb.b, params)
		sq.Key = string(eb.b)
	}
	putBuf(eb)
	return sq, nil
}

// SealUpdate prepares an update instance for the DSSP.
func (c *Codec) SealUpdate(t *template.Template, params []sqlparse.Value) (SealedUpdate, error) {
	if !t.Kind.IsUpdate() {
		return SealedUpdate{}, fmt.Errorf("wire: %s is not an update template", t.ID)
	}
	exp := c.ExposureOf(t)
	if exp > template.ExpStmt {
		exp = template.ExpStmt
	}
	eb := getBuf()
	eb.b = appendPayload(eb.b[:0], t.ID, params)
	su := SealedUpdate{
		Exposure: exp,
		TraceID:  obs.NewTraceID(),
		Group:    c.groups[t.ID],
		Opaque:   c.kr.Seal(domOpaque, eb.b),
	}
	putBuf(eb)
	if exp >= template.ExpTemplate {
		su.TemplateID = t.ID
	}
	if exp >= template.ExpStmt {
		su.Params = params
	}
	return su, nil
}

// OpenPayload decrypts an opaque statement payload (home-server side) and
// resolves its template. The returned parameters are freshly allocated;
// they never alias the pooled decrypt scratch.
func (c *Codec) OpenPayload(opaque []byte) (*template.Template, []sqlparse.Value, error) {
	eb := getBuf()
	defer putBuf(eb)
	b, err := c.kr.OpenAppend(eb.b[:0], domOpaque, opaque)
	if err != nil {
		return nil, nil, err
	}
	eb.b = b[:0]
	tid, params, err := decodePayload(b)
	if err != nil {
		return nil, nil, err
	}
	t := c.app.Query(tid)
	if t == nil {
		t = c.app.Update(tid)
	}
	if t == nil {
		return nil, nil, fmt.Errorf("wire: unknown template %q in payload", tid)
	}
	return t, params, nil
}

// SealResult seals a query result according to the query's exposure: view
// exposure keeps it in the clear, anything lower encrypts it.
func (c *Codec) SealResult(t *template.Template, res *engine.Result) SealedResult {
	if c.ExposureOf(t) == template.ExpView {
		return SealedResult{Result: res}
	}
	eb := getBuf()
	eb.b = appendResult(eb.b[:0], res)
	sr := SealedResult{Cipher: c.kr.Seal(domResult, eb.b)}
	putBuf(eb)
	return sr
}

// OpenResult recovers the plaintext result from a sealed result
// (client side). The returned result is always the caller's own copy:
// for encrypted results it is freshly decoded, and for view-exposure
// results — where the sealed form carries the DSSP's cached object by
// pointer — it is a deep copy, so a caller mutating its result can never
// corrupt the cache (the engine.Result no-aliasing invariant).
func (c *Codec) OpenResult(sr SealedResult) (*engine.Result, error) {
	if sr.Result != nil {
		return sr.Result.Clone(), nil
	}
	eb := getBuf()
	defer putBuf(eb)
	b, err := c.kr.OpenAppend(eb.b[:0], domResult, sr.Cipher)
	if err != nil {
		return nil, err
	}
	eb.b = b[:0]
	res, err := decodeResult(b)
	if err != nil {
		return nil, fmt.Errorf("wire: decode result: %w", err)
	}
	return res, nil
}

// Size estimates the wire size of a sealed result in bytes, for the
// simulator's bandwidth model.
func (sr SealedResult) Size() int {
	if sr.Cipher != nil {
		return len(sr.Cipher)
	}
	n := 64
	for _, c := range sr.Result.Columns {
		n += len(c) + 4
	}
	for _, row := range sr.Result.Rows {
		for _, v := range row {
			n += 10
			if v.Kind == sqlparse.KindString {
				n += len(v.Str)
			}
		}
	}
	return n
}
