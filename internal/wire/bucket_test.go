package wire

import (
	"reflect"
	"testing"

	"dssp/internal/engine"
	"dssp/internal/sqlparse"
	"dssp/internal/template"
)

func bucketFixtures() []BucketEntry {
	return []BucketEntry{
		{ // sealed result, exposed template, mixed params
			Query: SealedQuery{
				Exposure:   template.ExpStmt,
				TemplateID: "Q2",
				Group:      3,
				Params:     []sqlparse.Value{sqlparse.IntVal(5), sqlparse.StringVal("bear"), sqlparse.FloatVal(2.5)},
				Key:        "Q2\x005",
				Opaque:     []byte("opaque-cipher"),
			},
			Result:  SealedResult{Cipher: []byte("ciphertext")},
			Ordinal: 0,
		},
		{ // view-exposure plaintext result
			Query: SealedQuery{
				Exposure:   template.ExpView,
				TemplateID: "Q1",
				Key:        "Q1\x00bear",
			},
			Result: SealedResult{Result: &engine.Result{
				Columns: []string{"toy_id"},
				Rows:    [][]sqlparse.Value{{sqlparse.IntVal(7)}},
			}},
			Ordinal: 1,
		},
		{ // blind entry: no template, no result body
			Query: SealedQuery{
				Exposure: template.ExpBlind,
				Key:      "blind-token",
				Opaque:   []byte{0x00, 0xff, 0x01},
			},
			Ordinal: 12345,
		},
	}
}

func TestBucketEntriesRoundTrip(t *testing.T) {
	want := bucketFixtures()
	enc := AppendBucketEntries(nil, want)
	got, err := DecodeBucketEntries(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got: %+v\nwant: %+v", got, want)
	}
	// Decoded entries must not alias the encoding: the migration path
	// reuses request buffers after decode.
	for i := range enc {
		enc[i] = 0xAA
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("decoded entries alias the wire buffer")
	}
}

func TestBucketEntriesEmpty(t *testing.T) {
	enc := AppendBucketEntries(nil, nil)
	got, err := DecodeBucketEntries(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d entries from an empty stream", len(got))
	}
}

func TestBucketEntriesRejectMalformed(t *testing.T) {
	enc := AppendBucketEntries(nil, bucketFixtures())
	if _, err := DecodeBucketEntries(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeBucketEntries(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// n=1, exposure, empty template/params/key/opaque, then result tag 9.
	if _, err := DecodeBucketEntries([]byte{1, 0, 0, 0, 0, 0, 0, 9}); err == nil {
		t.Error("unknown result tag accepted")
	}
}

func TestTemplateIDsRoundTrip(t *testing.T) {
	for _, ids := range [][]string{nil, {"Q1"}, {"Q1", "Q2", "a long template identifier"}} {
		got, err := DecodeTemplateIDs(AppendTemplateIDs(nil, ids))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ids) {
			t.Fatalf("round trip %v -> %v", ids, got)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("round trip %v -> %v", ids, got)
			}
		}
	}
	if _, err := DecodeTemplateIDs(append(AppendTemplateIDs(nil, []string{"Q1"}), 'x')); err == nil {
		t.Error("trailing bytes accepted")
	}
}
