package wire

import (
	"encoding/binary"
	"math"

	"dssp/internal/sqlparse"
	"dssp/internal/template"
)

// Migration stream encoding: when ring membership changes, the moved
// template buckets' sealed entries travel from their old owner to the
// new one. Everything in a BucketEntry is material the exporting node
// already held — ciphertext, deterministic tokens, and routing metadata
// — so migration needs no keys and leaks nothing a node compromise
// would not already leak. Trace metadata (TraceID/ParentSpan) is
// per-request observability and deliberately does not travel.
//
// Wire grammar (reusing the canonical value encoding of values.go):
//
//	entries = uvarint(n) entry*
//	entry   = byte(exposure) str(templateID) uvarint(group)
//	          uvarint(nparams) value* str(key) str(opaque)
//	          result uvarint(ordinal)
//	result  = 0x00                      (none)
//	        | 0x01 str(cipher)          (sealed result)
//	        | 0x02 str(result-encoding) (view-exposure plaintext)
//	str     = uvarint(len) bytes
//	ids     = uvarint(n) str*

// BucketEntry is one sealed cache entry in flight between nodes during a
// ring rebalance. Ordinal is the entry's LRU recency rank among the
// exported set — lower is least recently used — so the importing node
// can rebuild the same eviction order.
type BucketEntry struct {
	Query   SealedQuery
	Result  SealedResult
	Ordinal int
}

// AppendBucketEntries appends the migration encoding of entries to dst,
// staging variable-length parts in pooled scratch.
func AppendBucketEntries(dst []byte, entries []BucketEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	eb := getBuf()
	for i := range entries {
		dst = appendBucketEntry(dst, eb, &entries[i])
	}
	putBuf(eb)
	return dst
}

func appendBucketEntry(dst []byte, eb *encBuf, e *BucketEntry) []byte {
	sq := &e.Query
	dst = append(dst, byte(sq.Exposure))
	dst = binary.AppendUvarint(dst, uint64(len(sq.TemplateID)))
	dst = append(dst, sq.TemplateID...)
	dst = binary.AppendUvarint(dst, uint64(sq.Group))
	dst = binary.AppendUvarint(dst, uint64(len(sq.Params)))
	dst = appendParams(dst, sq.Params)
	dst = binary.AppendUvarint(dst, uint64(len(sq.Key)))
	dst = append(dst, sq.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(sq.Opaque)))
	dst = append(dst, sq.Opaque...)
	switch {
	case e.Result.Cipher != nil:
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(e.Result.Cipher)))
		dst = append(dst, e.Result.Cipher...)
	case e.Result.Result != nil:
		dst = append(dst, 2)
		eb.b = appendResult(eb.b[:0], e.Result.Result)
		dst = binary.AppendUvarint(dst, uint64(len(eb.b)))
		dst = append(dst, eb.b...)
	default:
		dst = append(dst, 0)
	}
	return binary.AppendUvarint(dst, uint64(e.Ordinal))
}

// DecodeBucketEntries decodes a migration stream. Everything returned is
// freshly allocated — nothing aliases b.
func DecodeBucketEntries(b []byte) ([]BucketEntry, error) {
	n, b, err := decodeCount(b)
	if err != nil {
		return nil, errMalformed
	}
	entries := make([]BucketEntry, 0, n)
	for i := 0; i < n; i++ {
		var e BucketEntry
		if e, b, err = decodeBucketEntry(b); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return nil, errMalformed // trailing bytes: not a canonical encoding
	}
	return entries, nil
}

func decodeBucketEntry(b []byte) (BucketEntry, []byte, error) {
	var e BucketEntry
	if len(b) == 0 {
		return e, nil, errMalformed
	}
	e.Query.Exposure, b = template.Exposure(b[0]), b[1:]
	var err error
	if e.Query.TemplateID, b, err = decodeString(b); err != nil {
		return e, nil, errMalformed
	}
	group, b, err := uvarint(b)
	if err != nil || group > math.MaxInt32 {
		return e, nil, errMalformed
	}
	e.Query.Group = int(group)
	nparams, b, err := decodeCount(b)
	if err != nil {
		return e, nil, errMalformed
	}
	if nparams > 0 {
		e.Query.Params = make([]sqlparse.Value, nparams)
		for i := range e.Query.Params {
			if e.Query.Params[i], b, err = decodeValue(b); err != nil {
				return e, nil, errMalformed
			}
		}
	}
	if e.Query.Key, b, err = decodeString(b); err != nil {
		return e, nil, errMalformed
	}
	var opaque string
	if opaque, b, err = decodeString(b); err != nil {
		return e, nil, errMalformed
	}
	if opaque != "" {
		e.Query.Opaque = []byte(opaque)
	}
	if len(b) == 0 {
		return e, nil, errMalformed
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case 0:
	case 1:
		var cipher string
		if cipher, b, err = decodeString(b); err != nil {
			return e, nil, errMalformed
		}
		e.Result.Cipher = []byte(cipher)
	case 2:
		n, rest, err := uvarint(b)
		if err != nil || n > uint64(len(rest)) {
			return e, nil, errMalformed
		}
		res, err := decodeResult(rest[:n])
		if err != nil {
			return e, nil, errMalformed
		}
		e.Result.Result = res
		b = rest[n:]
	default:
		return e, nil, errMalformed
	}
	ord, b, err := uvarint(b)
	if err != nil || ord > math.MaxInt32 {
		return e, nil, errMalformed
	}
	e.Ordinal = int(ord)
	return e, b, nil
}

// AppendTemplateIDs appends a template-ID list (an export request body).
func AppendTemplateIDs(dst []byte, ids []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(len(id)))
		dst = append(dst, id...)
	}
	return dst
}

// DecodeTemplateIDs decodes a template-ID list.
func DecodeTemplateIDs(b []byte) ([]string, error) {
	n, b, err := decodeCount(b)
	if err != nil {
		return nil, errMalformed
	}
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var id string
		if id, b, err = decodeString(b); err != nil {
			return nil, errMalformed
		}
		ids = append(ids, id)
	}
	if len(b) != 0 {
		return nil, errMalformed
	}
	return ids, nil
}
