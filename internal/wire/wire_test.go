package wire

import (
	"strings"
	"testing"

	"dssp/internal/apps"
	"dssp/internal/encrypt"
	"dssp/internal/engine"
	"dssp/internal/sqlparse"
	"dssp/internal/template"
)

func testCodec(t testing.TB, exps map[string]template.Exposure) (*Codec, *template.App) {
	t.Helper()
	app := apps.Toystore()
	master := make([]byte, encrypt.KeySize)
	for i := range master {
		master[i] = byte(i)
	}
	return NewCodec(app, encrypt.MustNewKeyring(master), exps), app
}

func TestExposureDefaults(t *testing.T) {
	c, app := testCodec(t, nil)
	if c.ExposureOf(app.Query("Q1")) != template.ExpView {
		t.Error("query default should be view")
	}
	if c.ExposureOf(app.Update("U1")) != template.ExpStmt {
		t.Error("update default should be stmt")
	}
	c2, app2 := testCodec(t, map[string]template.Exposure{"Q1": template.ExpBlind})
	if c2.ExposureOf(app2.Query("Q1")) != template.ExpBlind {
		t.Error("explicit exposure ignored")
	}
}

func TestSealQueryView(t *testing.T) {
	c, app := testCodec(t, nil)
	q := app.Query("Q2")
	sq, err := c.SealQuery(q, []sqlparse.Value{sqlparse.IntVal(5)})
	if err != nil {
		t.Fatal(err)
	}
	if sq.TemplateID != "Q2" || len(sq.Params) != 1 {
		t.Errorf("view exposure must expose template and params: %+v", sq)
	}
	// Determinism: same instance, same key.
	sq2, _ := c.SealQuery(q, []sqlparse.Value{sqlparse.IntVal(5)})
	if sq.Key != sq2.Key {
		t.Error("keys not deterministic")
	}
	sq3, _ := c.SealQuery(q, []sqlparse.Value{sqlparse.IntVal(6)})
	if sq.Key == sq3.Key {
		t.Error("distinct params share a key")
	}
}

func TestSealQueryTemplate(t *testing.T) {
	c, app := testCodec(t, map[string]template.Exposure{"Q2": template.ExpTemplate})
	q := app.Query("Q2")
	sq, _ := c.SealQuery(q, []sqlparse.Value{sqlparse.IntVal(5)})
	if sq.TemplateID != "Q2" {
		t.Error("template exposure must expose the template")
	}
	if sq.Params != nil {
		t.Error("template exposure must hide params")
	}
	if strings.Contains(sq.Key, "5") && strings.Contains(sq.Key, sqlparse.IntVal(5).String()+"\x00") {
		t.Error("param value leaked into key")
	}
	sq2, _ := c.SealQuery(q, []sqlparse.Value{sqlparse.IntVal(5)})
	if sq.Key != sq2.Key {
		t.Error("keys not deterministic")
	}
}

func TestSealQueryBlind(t *testing.T) {
	c, app := testCodec(t, map[string]template.Exposure{"Q2": template.ExpBlind})
	sq, _ := c.SealQuery(app.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(5)})
	if sq.TemplateID != "" || sq.Params != nil {
		t.Errorf("blind exposure leaked information: %+v", sq)
	}
	if strings.Contains(sq.Key, "Q2") || strings.Contains(sq.Key, "toys") {
		t.Error("blind key leaks template identity")
	}
}

func TestSealUpdateLevels(t *testing.T) {
	c, app := testCodec(t, map[string]template.Exposure{"U2": template.ExpTemplate})
	su, err := c.SealUpdate(app.Update("U2"),
		[]sqlparse.Value{sqlparse.IntVal(1), sqlparse.StringVal("4111"), sqlparse.StringVal("15213")})
	if err != nil {
		t.Fatal(err)
	}
	if su.TemplateID != "U2" {
		t.Error("template exposure must expose the template id")
	}
	if su.Params != nil {
		t.Error("template exposure must hide update params")
	}
	c2, app2 := testCodec(t, nil)
	su2, _ := c2.SealUpdate(app2.Update("U1"), []sqlparse.Value{sqlparse.IntVal(5)})
	if su2.Params == nil {
		t.Error("stmt exposure must expose params")
	}
}

func TestSealRejectsWrongKind(t *testing.T) {
	c, app := testCodec(t, nil)
	if _, err := c.SealQuery(app.Update("U1"), nil); err == nil {
		t.Error("update sealed as query")
	}
	if _, err := c.SealUpdate(app.Query("Q1"), nil); err == nil {
		t.Error("query sealed as update")
	}
}

func TestOpenPayloadRoundTrip(t *testing.T) {
	c, app := testCodec(t, nil)
	params := []sqlparse.Value{sqlparse.IntVal(5)}
	sq, _ := c.SealQuery(app.Query("Q2"), params)
	tm, got, err := c.OpenPayload(sq.Opaque)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ID != "Q2" || len(got) != 1 || !got[0].Equal(params[0]) {
		t.Errorf("payload round trip: %v %v", tm.ID, got)
	}
	// Tampering is rejected.
	bad := append([]byte{}, sq.Opaque...)
	bad[0] ^= 1
	if _, _, err := c.OpenPayload(bad); err == nil {
		t.Error("tampered payload accepted")
	}
}

func TestSealResultRoundTrip(t *testing.T) {
	res := &engine.Result{
		Columns: []string{"qty"},
		Rows:    [][]sqlparse.Value{{sqlparse.IntVal(25)}},
	}
	// Encrypted at stmt exposure.
	c, app := testCodec(t, map[string]template.Exposure{"Q2": template.ExpStmt})
	sr := c.SealResult(app.Query("Q2"), res)
	if sr.Result != nil || len(sr.Cipher) == 0 {
		t.Fatalf("stmt exposure must encrypt the result: %+v", sr)
	}
	got, err := c.OpenResult(sr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint(true) != res.Fingerprint(true) {
		t.Error("result round trip changed content")
	}
	// Plaintext at view exposure.
	c2, app2 := testCodec(t, nil)
	sr2 := c2.SealResult(app2.Query("Q2"), res)
	if sr2.Result == nil {
		t.Error("view exposure must keep the result in the clear")
	}
	if sr2.Size() <= 0 || sr.Size() <= 0 {
		t.Error("sizes must be positive")
	}
}

func TestBlindKeyIncludesParams(t *testing.T) {
	c, app := testCodec(t, map[string]template.Exposure{"Q2": template.ExpBlind})
	a, _ := c.SealQuery(app.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(1)})
	b, _ := c.SealQuery(app.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(2)})
	if a.Key == b.Key {
		t.Error("blind keys must distinguish parameter values")
	}
	// Distinct templates never collide either.
	c2, app2 := testCodec(t, map[string]template.Exposure{"Q1": template.ExpBlind, "Q2": template.ExpBlind})
	x, _ := c2.SealQuery(app2.Query("Q1"), []sqlparse.Value{sqlparse.StringVal("5")})
	y, _ := c2.SealQuery(app2.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(5)})
	if x.Key == y.Key {
		t.Error("blind keys collide across templates")
	}
}
