package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"

	"dssp/internal/engine"
	"dssp/internal/sqlparse"
)

// Deterministic binary encoding of SQL values, statements, payloads, and
// results. The format serves two masters at once:
//
//   - cache keys: the DSSP looks results up by (tokens of) these bytes,
//     so the encoding must be canonical — equal inputs always produce
//     equal bytes — and injective — distinct inputs never collide. Every
//     value is kind-tagged and either fixed-width or length-delimited, so
//     a byte stream parses as exactly one value sequence; the previous
//     textual rendering separated values with NUL and let a FLOAT and an
//     INT of equal numeric value share one encoding.
//   - the opaque payload and sealed results: encode/decode sits on the
//     per-message hot path, so encoding appends to caller-supplied
//     (pooled) buffers and decoding allocates only the returned values.
//
// Wire grammar:
//
//	value   = 0x00                      (NULL)
//	        | 0x01 int64-big-endian     (INT)
//	        | 0x02 float64-bits-BE      (FLOAT)
//	        | 0x03 uvarint(len) bytes   (STRING)
//	params  = value*                    (self-delimiting)
//	stmt    = uvarint(len) sql params
//	payload = uvarint(len) templateID uvarint(nparams) value*
//	result  = uvarint(ncols) { uvarint(len) name }*
//	          uvarint(nrows) { uvarint(width) value* }*
//	          uvarint(rowsScanned)

var errMalformed = errors.New("wire: malformed encoding")

// encBuf is pooled encode/decode scratch. Callers must not retain eb.b
// (or anything decoded in place from it) past putBuf.
type encBuf struct{ b []byte }

// maxPooledBuf bounds the capacity a returned buffer may keep: one giant
// result must not pin its arena in the pool forever.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any { return new(encBuf) }}

func getBuf() *encBuf { return bufPool.Get().(*encBuf) }

func putBuf(eb *encBuf) {
	if cap(eb.b) <= maxPooledBuf {
		bufPool.Put(eb)
	}
}

// appendValue appends one kind-tagged value.
func appendValue(dst []byte, v sqlparse.Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case sqlparse.KindNull:
	case sqlparse.KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int))
	case sqlparse.KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float))
	case sqlparse.KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		dst = append(dst, v.Str...)
	default:
		// Unknown kinds cannot round-trip; encode as an impossible tag so
		// decoding fails loudly instead of silently colliding.
		dst = append(dst, 0xFF)
	}
	return dst
}

// uvarint consumes one minimally-encoded uvarint. Rejecting non-minimal
// forms (e.g. 0x80 0x00 for zero) keeps the accepted language canonical:
// every valid encoding decodes to values that re-encode to exactly it.
func uvarint(b []byte) (uint64, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || (w > 1 && n>>(7*(w-1)) == 0) {
		return 0, nil, errMalformed
	}
	return n, b[w:], nil
}

// decodeValue consumes one value from b and returns the remainder. The
// returned value's string data is copied out of b.
func decodeValue(b []byte) (sqlparse.Value, []byte, error) {
	if len(b) == 0 {
		return sqlparse.Value{}, nil, errMalformed
	}
	kind, b := sqlparse.ValueKind(b[0]), b[1:]
	switch kind {
	case sqlparse.KindNull:
		return sqlparse.Null(), b, nil
	case sqlparse.KindInt:
		if len(b) < 8 {
			return sqlparse.Value{}, nil, errMalformed
		}
		return sqlparse.IntVal(int64(binary.BigEndian.Uint64(b))), b[8:], nil
	case sqlparse.KindFloat:
		if len(b) < 8 {
			return sqlparse.Value{}, nil, errMalformed
		}
		return sqlparse.FloatVal(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case sqlparse.KindString:
		n, rest, err := uvarint(b)
		if err != nil || n > uint64(len(rest)) {
			return sqlparse.Value{}, nil, errMalformed
		}
		return sqlparse.StringVal(string(rest[:n])), rest[n:], nil
	default:
		return sqlparse.Value{}, nil, errMalformed
	}
}

// appendParams appends the parameter encoding. Values are self-delimiting,
// so plain concatenation is injective with no separator or count.
func appendParams(dst []byte, params []sqlparse.Value) []byte {
	for _, v := range params {
		dst = appendValue(dst, v)
	}
	return dst
}

// appendStmt appends a whole-statement encoding: the template SQL,
// length-prefixed so it can never bleed into the parameter encoding, then
// the parameters. This is the blind lookup-key material.
func appendStmt(dst []byte, sql string, params []sqlparse.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(sql)))
	dst = append(dst, sql...)
	return appendParams(dst, params)
}

// appendPayload appends the opaque statement payload: template identity
// plus parameters.
func appendPayload(dst []byte, templateID string, params []sqlparse.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(templateID)))
	dst = append(dst, templateID...)
	dst = binary.AppendUvarint(dst, uint64(len(params)))
	return appendParams(dst, params)
}

// decodeString consumes one uvarint-length-prefixed string.
func decodeString(b []byte) (string, []byte, error) {
	n, rest, err := uvarint(b)
	if err != nil || n > uint64(len(rest)) {
		return "", nil, errMalformed
	}
	return string(rest[:n]), rest[n:], nil
}

// decodeCount consumes one uvarint and bounds it by the remaining input:
// every counted element costs at least one encoded byte, so any larger
// count is corrupt — rejecting it here keeps decode from pre-allocating
// unbounded slices for forged payloads.
func decodeCount(b []byte) (int, []byte, error) {
	n, rest, err := uvarint(b)
	if err != nil || n > uint64(len(rest)) {
		return 0, nil, errMalformed
	}
	return int(n), rest, nil
}

// decodePayload decodes an opaque statement payload. Everything returned
// is freshly allocated — nothing aliases b.
func decodePayload(b []byte) (templateID string, params []sqlparse.Value, err error) {
	templateID, b, err = decodeString(b)
	if err != nil {
		return "", nil, errMalformed
	}
	n, b, err := decodeCount(b)
	if err != nil {
		return "", nil, errMalformed
	}
	if n > 0 {
		params = make([]sqlparse.Value, n)
		for i := range params {
			if params[i], b, err = decodeValue(b); err != nil {
				return "", nil, errMalformed
			}
		}
	}
	if len(b) != 0 {
		return "", nil, errMalformed // trailing bytes: not a canonical encoding
	}
	return templateID, params, nil
}

// appendResult appends a materialized query result.
func appendResult(dst []byte, r *engine.Result) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Columns)))
	for _, c := range r.Columns {
		dst = binary.AppendUvarint(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		dst = appendParams(dst, row)
	}
	return binary.AppendUvarint(dst, uint64(r.RowsScanned))
}

// decodeResult decodes a sealed result body. The returned result is
// freshly allocated — nothing aliases b.
func decodeResult(b []byte) (*engine.Result, error) {
	var err error
	r := &engine.Result{}
	ncols, b, err := decodeCount(b)
	if err != nil {
		return nil, errMalformed
	}
	if ncols > 0 {
		r.Columns = make([]string, ncols)
		for i := range r.Columns {
			if r.Columns[i], b, err = decodeString(b); err != nil {
				return nil, errMalformed
			}
		}
	}
	nrows, b, err := decodeCount(b)
	if err != nil {
		return nil, errMalformed
	}
	if nrows > 0 {
		r.Rows = make([][]sqlparse.Value, nrows)
		for i := range r.Rows {
			var width int
			if width, b, err = decodeCount(b); err != nil {
				return nil, errMalformed
			}
			row := make([]sqlparse.Value, width)
			for j := range row {
				if row[j], b, err = decodeValue(b); err != nil {
					return nil, errMalformed
				}
			}
			r.Rows[i] = row
		}
	}
	scanned, rest, err := uvarint(b)
	if err != nil || len(rest) != 0 || scanned > math.MaxInt32 {
		return nil, errMalformed
	}
	r.RowsScanned = int(scanned)
	return r, nil
}
