package wire

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dssp/internal/engine"
	"dssp/internal/sqlparse"
	"dssp/internal/template"
)

// legacyEncodeParams is the pre-PR parameter encoding, kept verbatim as
// the regression reference: SQL-literal rendering of each value followed
// by a NUL separator. It is NOT injective — an INT and a FLOAT of equal
// numeric value render to the same decimal string — which made distinct
// statements share deterministic cache keys at blind and template
// exposure.
func legacyEncodeParams(params []sqlparse.Value) []byte {
	var buf bytes.Buffer
	for _, v := range params {
		buf.WriteString(v.String())
		buf.WriteByte('\x00')
	}
	return buf.Bytes()
}

// injectivityCorpus is a set of pairwise-distinct parameter lists,
// including the pairs that collided under the legacy encoding.
func injectivityCorpus() [][]sqlparse.Value {
	return [][]sqlparse.Value{
		nil,
		{sqlparse.Null()},
		{sqlparse.Null(), sqlparse.Null()},
		{sqlparse.IntVal(5)},
		{sqlparse.FloatVal(5)}, // legacy: collides with IntVal(5)
		{sqlparse.IntVal(-1)},
		{sqlparse.FloatVal(-1)}, // legacy: collides with IntVal(-1)
		{sqlparse.IntVal(0)},
		{sqlparse.FloatVal(0)},
		{sqlparse.FloatVal(math.Copysign(0, -1))},
		{sqlparse.StringVal("5")},
		{sqlparse.StringVal("NULL")},
		{sqlparse.StringVal("")},
		{sqlparse.StringVal("a\x00b")},
		{sqlparse.StringVal("a"), sqlparse.StringVal("b")},
		{sqlparse.StringVal("a\x00"), sqlparse.StringVal("b")},
		{sqlparse.StringVal("a"), sqlparse.StringVal("\x00b")},
		{sqlparse.StringVal("ab"), sqlparse.StringVal("")},
		{sqlparse.StringVal(""), sqlparse.StringVal("ab")},
		{sqlparse.IntVal(5), sqlparse.Null()},
		{sqlparse.Null(), sqlparse.IntVal(5)},
		{sqlparse.IntVal(strconv.IntSize)},
		{sqlparse.IntVal(math.MaxInt64)},
		{sqlparse.IntVal(math.MinInt64)},
		{sqlparse.FloatVal(math.Inf(1))},
		{sqlparse.FloatVal(math.MaxFloat64)},
	}
}

// TestEncodeParamsInjective is the regression test for the encodeParams
// collision: under the legacy NUL-separated rendering, parameter lists
// with equal renderings (e.g. INT 5 and FLOAT 5, both "5") produced equal
// cache-key material; the kind-tagged length-delimited encoding must give
// every distinct list a distinct byte string.
func TestEncodeParamsInjective(t *testing.T) {
	corpus := injectivityCorpus()

	// First, pin that the corpus really exercises the legacy bug: at
	// least one pair of distinct lists collided under the old encoding.
	legacyCollisions := 0
	for i := range corpus {
		for j := i + 1; j < len(corpus); j++ {
			if bytes.Equal(legacyEncodeParams(corpus[i]), legacyEncodeParams(corpus[j])) {
				legacyCollisions++
			}
		}
	}
	if legacyCollisions == 0 {
		t.Fatal("corpus no longer demonstrates the legacy collision; the regression test lost its teeth")
	}

	// The new encoding must distinguish every pair.
	enc := make([][]byte, len(corpus))
	for i, params := range corpus {
		enc[i] = appendParams(nil, params)
	}
	for i := range corpus {
		for j := i + 1; j < len(corpus); j++ {
			if bytes.Equal(enc[i], enc[j]) {
				t.Errorf("appendParams collision between %v and %v", corpus[i], corpus[j])
			}
		}
	}

	// And no encoding may be a prefix of another (values are concatenated
	// without a count, so prefix-freedom is what makes concatenation safe
	// inside larger messages).
	for i := range enc {
		for j := range enc {
			if i != j && len(enc[i]) > 0 && bytes.HasPrefix(enc[j], enc[i]) {
				// A shorter list IS a prefix of the list that extends it;
				// only flag pairs where neither extends the other.
				if !hasListPrefix(corpus[j], corpus[i]) {
					t.Errorf("encoding of %v is a stray prefix of %v", corpus[i], corpus[j])
				}
			}
		}
	}
}

func hasListPrefix(list, prefix []sqlparse.Value) bool {
	if len(prefix) > len(list) {
		return false
	}
	for i, v := range prefix {
		lv := list[i]
		if v.Kind != lv.Kind || v.Int != lv.Int || v.Str != lv.Str ||
			math.Float64bits(v.Float) != math.Float64bits(lv.Float) {
			return false
		}
	}
	return true
}

// TestKeyInjectivity checks the collision at the level that mattered: two
// distinct statements must never share a deterministic cache key, at any
// exposure.
func TestKeyInjectivity(t *testing.T) {
	for _, exp := range []template.Exposure{template.ExpBlind, template.ExpTemplate, template.ExpStmt} {
		c, app := testCodec(t, map[string]template.Exposure{"Q2": exp})
		q := app.Query("Q2")
		a, err := c.SealQuery(q, []sqlparse.Value{sqlparse.IntVal(5)})
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.SealQuery(q, []sqlparse.Value{sqlparse.FloatVal(5)})
		if err != nil {
			t.Fatal(err)
		}
		if a.Key == b.Key {
			t.Errorf("exposure %v: INT 5 and FLOAT 5 share cache key", exp)
		}
	}
}

// TestStmtEncodingInjective checks the blind lookup-key material: the SQL
// is length-prefixed, so statement text can never bleed into the parameter
// encoding or vice versa.
func TestStmtEncodingInjective(t *testing.T) {
	type stmt struct {
		sql    string
		params []sqlparse.Value
	}
	cases := []stmt{
		{"SELECT 1", nil},
		{"SELECT 1", []sqlparse.Value{sqlparse.StringVal("")}},
		{"SELECT 1\x00", nil},
		{"SELECT 1\x00'x'", nil},
		{"SELECT 1", []sqlparse.Value{sqlparse.StringVal("x")}},
		{"", []sqlparse.Value{sqlparse.StringVal("SELECT 1")}},
		{"SELECT ?", []sqlparse.Value{sqlparse.IntVal(7)}},
		{"SELECT ?", []sqlparse.Value{sqlparse.FloatVal(7)}},
	}
	seen := make(map[string]stmt, len(cases))
	for _, cs := range cases {
		k := string(appendStmt(nil, cs.sql, cs.params))
		if prev, dup := seen[k]; dup {
			t.Errorf("statement encoding collision: %+v vs %+v", prev, cs)
		}
		seen[k] = cs
	}
}

// TestPayloadRoundTrip round-trips payloads through the binary codec and
// rejects non-canonical input.
func TestPayloadRoundTrip(t *testing.T) {
	for _, params := range injectivityCorpus() {
		b := appendPayload(nil, "Q-weird\x00id", params)
		tid, got, err := decodePayload(b)
		if err != nil {
			t.Fatalf("decodePayload(%v): %v", params, err)
		}
		if tid != "Q-weird\x00id" {
			t.Fatalf("template id corrupted: %q", tid)
		}
		if len(got) != len(params) {
			t.Fatalf("param count %d != %d", len(got), len(params))
		}
		for i := range params {
			if math.Float64bits(got[i].Float) != math.Float64bits(params[i].Float) {
				t.Fatalf("param %d float bits changed", i)
			}
			if got[i].Kind != params[i].Kind || got[i].Int != params[i].Int || got[i].Str != params[i].Str {
				t.Fatalf("param %d round trip: %v != %v", i, got[i], params[i])
			}
		}
		// Trailing garbage is not a valid payload.
		if _, _, err := decodePayload(append(bytes.Clone(b), 0)); err == nil {
			t.Fatal("payload with trailing byte accepted")
		}
	}
	// Truncations must error, never panic or mis-decode.
	full := appendPayload(nil, "Q1", []sqlparse.Value{sqlparse.IntVal(1), sqlparse.StringVal("abc")})
	for n := 0; n < len(full); n++ {
		if _, _, err := decodePayload(full[:n]); err == nil {
			t.Fatalf("truncated payload of %d/%d bytes accepted", n, len(full))
		}
	}
}

// TestResultCodecRoundTrip round-trips results of every shape through
// appendResult/decodeResult.
func TestResultCodecRoundTrip(t *testing.T) {
	results := []*engine.Result{
		{},
		{Columns: []string{"qty"}, RowsScanned: 3},
		{
			Columns: []string{"toy_id", "name", "price"},
			Rows: [][]sqlparse.Value{
				{sqlparse.IntVal(1), sqlparse.StringVal("robot\x00toy"), sqlparse.FloatVal(9.99)},
				{sqlparse.IntVal(2), sqlparse.Null(), sqlparse.FloatVal(math.Inf(1))},
				{},
			},
			RowsScanned: 128,
		},
	}
	for _, r := range results {
		b := appendResult(nil, r)
		got, err := decodeResult(b)
		if err != nil {
			t.Fatalf("decodeResult: %v", err)
		}
		if got.Fingerprint(true) != r.Fingerprint(true) || got.RowsScanned != r.RowsScanned {
			t.Fatalf("result round trip changed content: %+v vs %+v", got, r)
		}
		if _, err := decodeResult(append(bytes.Clone(b), 0)); err == nil {
			t.Fatal("result with trailing byte accepted")
		}
		for n := 0; n < len(b); n++ {
			if _, err := decodeResult(b[:n]); err == nil {
				t.Fatalf("truncated result of %d/%d bytes accepted", n, len(b))
			}
		}
	}
}

// TestOpenResultNoAliasing is the regression test for the view-exposure
// aliasing bug: SealResult at view exposure carries the cached
// *engine.Result by pointer, and OpenResult used to hand that same pointer
// to the client — a client mutating its "own" result rewrote the DSSP's
// cache entry in place, breaking the engine.Result no-aliasing invariant.
// OpenResult must return a deep copy.
func TestOpenResultNoAliasing(t *testing.T) {
	c, app := testCodec(t, nil) // Q2 defaults to view exposure
	cached := &engine.Result{
		Columns:     []string{"qty", "name"},
		Rows:        [][]sqlparse.Value{{sqlparse.IntVal(25), sqlparse.StringVal("robot")}},
		RowsScanned: 1,
	}
	want := cached.Fingerprint(true)

	sr := c.SealResult(app.Query("Q2"), cached)
	if sr.Result != cached {
		t.Fatal("view exposure should carry the result by pointer (the hazard under test)")
	}
	opened, err := c.OpenResult(sr)
	if err != nil {
		t.Fatal(err)
	}
	if opened == cached {
		t.Fatal("OpenResult returned the cached object itself")
	}
	// Mutate every level of the opened copy.
	opened.Columns[0] = "corrupted"
	opened.Rows[0][0] = sqlparse.IntVal(-999)
	opened.Rows = append(opened.Rows[:0], nil)
	opened.RowsScanned = 0
	if cached.Fingerprint(true) != want || cached.RowsScanned != 1 {
		t.Fatal("mutating the opened result corrupted the cached object")
	}
}

// TestOpenResultNoAliasingConcurrent pins the same invariant under the
// race detector: concurrent clients opening and mutating the same sealed
// view result must never write to shared memory. Before the deep-copy fix
// this was a guaranteed data race.
func TestOpenResultNoAliasingConcurrent(t *testing.T) {
	c, app := testCodec(t, nil)
	cached := &engine.Result{
		Columns: []string{"qty"},
		Rows:    [][]sqlparse.Value{{sqlparse.IntVal(25)}},
	}
	want := cached.Fingerprint(true)
	sr := c.SealResult(app.Query("Q2"), cached)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r, err := c.OpenResult(sr)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				r.Rows[0][0] = sqlparse.IntVal(int64(w*1000 + i))
				r.Columns[0] = fmt.Sprintf("w%d", w)
			}
		}()
	}
	wg.Wait()
	if cached.Fingerprint(true) != want {
		t.Fatal("concurrent clients corrupted the cached result")
	}
}

// TestCodecBufferOwnership stresses the wire package's pooled encode
// buffers: concurrent seals and opens across all exposures, with sealed
// outputs retained and re-verified after heavy pooled reuse. Any sealed
// message or decoded value aliasing pooled scratch shows up as a mismatch
// here or a race under -race.
func TestCodecBufferOwnership(t *testing.T) {
	c, app := testCodec(t, map[string]template.Exposure{
		"Q1": template.ExpBlind,
		"Q2": template.ExpTemplate,
		"Q3": template.ExpStmt,
	})
	queries := []string{"Q1", "Q2", "Q3"}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			type held struct {
				key    string
				opaque []byte
				tid    string
				params []sqlparse.Value
			}
			var retained []held
			for i := 0; i < 300; i++ {
				q := app.Query(queries[rng.Intn(len(queries))])
				params := []sqlparse.Value{
					sqlparse.IntVal(int64(rng.Intn(1000))),
					sqlparse.StringVal(strings.Repeat("x", rng.Intn(40)) + "\x00tail"),
				}
				params = params[:1+rng.Intn(2)]
				sq, err := c.SealQuery(q, params)
				if err != nil {
					t.Errorf("worker %d: seal: %v", w, err)
					return
				}
				tm, got, err := c.OpenPayload(sq.Opaque)
				if err != nil || tm.ID != q.ID || len(got) != len(params) {
					t.Errorf("worker %d: payload round trip: %v %v", w, tm, err)
					return
				}
				if i%16 == 0 {
					retained = append(retained, held{
						key:    sq.Key,
						opaque: sq.Opaque,
						tid:    q.ID,
						params: got,
					})
				}
			}
			// Everything handed out must have survived pooled reuse: keys
			// still reproduce, opaques still open to the same statement.
			for _, h := range retained {
				sq, err := c.SealQuery(app.Query(h.tid), h.params)
				if err != nil {
					t.Errorf("worker %d: reseal: %v", w, err)
					return
				}
				if sq.Key != h.key {
					t.Errorf("worker %d: retained key no longer reproducible (pooled buffer escaped)", w)
					return
				}
				tm, got, err := c.OpenPayload(h.opaque)
				if err != nil || tm.ID != h.tid || len(got) != len(h.params) {
					t.Errorf("worker %d: retained opaque no longer opens: %v", w, err)
					return
				}
				for j := range got {
					if !got[j].Equal(h.params[j]) {
						t.Errorf("worker %d: retained params mutated by pooled reuse", w)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// FuzzDecodePayload fuzzes the payload decoder against arbitrary input:
// it must never panic, and every accepted input must re-encode to exactly
// itself (canonical form).
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendPayload(nil, "Q1", []sqlparse.Value{sqlparse.IntVal(5)}))
	f.Add(appendPayload(nil, "", []sqlparse.Value{sqlparse.StringVal("\x00")}))
	f.Fuzz(func(t *testing.T, b []byte) {
		tid, params, err := decodePayload(b)
		if err != nil {
			return
		}
		if !bytes.Equal(appendPayload(nil, tid, params), b) {
			t.Fatalf("accepted payload is not canonical: %q", b)
		}
	})
}
