package dssp

import (
	"fmt"
	"math/rand"
	"testing"

	"dssp/internal/apps"
	"dssp/internal/cache"
	"dssp/internal/core"
	"dssp/internal/encrypt"
	"dssp/internal/engine"
	"dssp/internal/homeserver"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
	"dssp/internal/template"
	"dssp/internal/wire"
)

var toyNames = []string{"bear", "truck", "doll", "kite", "ball"}

// richApp extends the toystore with templates covering every update/query
// interaction class.
func richApp() *template.App {
	app := apps.Toystore()
	s := app.Schema
	app.Queries = append(app.Queries,
		template.MustNew("Q4", s, "SELECT toy_id, qty FROM toys WHERE toy_name=?"),
		template.MustNew("Q5", s, "SELECT toy_id, qty FROM toys ORDER BY qty DESC LIMIT 3"),
		template.MustNew("Q6", s, "SELECT MAX(qty) FROM toys"),
		template.MustNew("Q7", s, "SELECT toy_name FROM toys WHERE qty>?"),
	)
	app.Updates = append(app.Updates,
		template.MustNew("U3", s, "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)"),
		template.MustNew("U4", s, "UPDATE toys SET qty=? WHERE toy_id=?"),
		template.MustNew("U5", s, "DELETE FROM toys WHERE qty<?"),
		template.MustNew("U6", s, "INSERT INTO customers (cust_id, cust_name) VALUES (?, ?)"),
	)
	return app
}

func newStack(t testing.TB, app *template.App, exps map[string]template.Exposure) (*Client, *storage.Database) {
	t.Helper()
	master := make([]byte, encrypt.KeySize)
	for i := range master {
		master[i] = byte(i * 3)
	}
	codec := wire.NewCodec(app, encrypt.MustNewKeyring(master), exps)
	db := storage.NewDatabase(app.Schema)
	node := NewNode(app, core.Analyze(app, core.DefaultOptions()), cache.Options{})
	home := homeserver.New(db, app, codec)
	return &Client{Codec: codec, Node: node, Home: home}, db
}

func seed(t testing.TB, db *storage.Database, rng *rand.Rand) {
	t.Helper()
	for i := 1; i <= 8; i++ {
		if err := db.Insert("toys", storage.Row{
			sqlparse.IntVal(int64(i)),
			sqlparse.StringVal(toyNames[rng.Intn(len(toyNames))]),
			sqlparse.IntVal(int64(rng.Intn(20))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 4; i++ {
		if err := db.Insert("customers", storage.Row{sqlparse.IntVal(int64(i)), sqlparse.StringVal(fmt.Sprintf("c%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("credit_card", storage.Row{
			sqlparse.IntVal(int64(i)), sqlparse.StringVal("4111"), sqlparse.StringVal(fmt.Sprintf("152%02d", i%3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// exposureScenarios covers the uniform strategies of Figure 8 plus the
// methodology outcome of §3.2.
func exposureScenarios(app *template.App) map[string]map[string]template.Exposure {
	uniform := func(e template.Exposure) map[string]template.Exposure {
		m := make(map[string]template.Exposure)
		for _, q := range app.Queries {
			m[q.ID] = e
		}
		for _, u := range app.Updates {
			eu := e
			if eu > template.ExpStmt {
				eu = template.ExpStmt
			}
			m[u.ID] = eu
		}
		return m
	}
	m := core.Methodology{App: app, Compulsory: core.ExposureAssignment{"U2": template.ExpTemplate},
		Opts: core.DefaultOptions()}
	reduced := m.Run().Final
	return map[string]map[string]template.Exposure{
		"MVIS":        uniform(template.ExpView),
		"MSIS":        uniform(template.ExpStmt),
		"MTIS":        uniform(template.ExpTemplate),
		"MBS":         uniform(template.ExpBlind),
		"methodology": reduced,
	}
}

// TestEndToEndConsistency is the system-level invariant: under any
// exposure assignment, every query answered by the DSSP (from cache or
// via the home server) equals direct execution against the master
// database, across a random interleaving of queries and updates.
func TestEndToEndConsistency(t *testing.T) {
	app := richApp()
	for name, exps := range exposureScenarios(app) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			client, db := newStack(t, app, exps)
			seed(t, db, rng)
			st := newGenState()

			hits := 0
			for step := 0; step < 1500; step++ {
				if rng.Intn(100) < 80 { // 80% queries
					q := app.Queries[rng.Intn(len(app.Queries))]
					params := queryParams(rng, q)
					got, err := client.Query(q, params...)
					if err != nil {
						t.Fatalf("step %d query %s: %v", step, q.ID, err)
					}
					if got.Outcome.Hit {
						hits++
					}
					vals, _ := Params(params...)
					want, err := engine.ExecQuery(db, q.Stmt.(*sqlparse.SelectStmt), vals)
					if err != nil {
						t.Fatal(err)
					}
					ordered := len(q.Stmt.(*sqlparse.SelectStmt).OrderBy) > 0
					if got.Result.Fingerprint(ordered) != want.Fingerprint(ordered) {
						t.Fatalf("step %d: stale answer for %s%v (hit=%v):\n got: %v\nwant: %v",
							step, q.ID, params, got.Outcome.Hit, got.Result.Rows, want.Rows)
					}
				} else {
					u, params := updateParams(rng, app, app.Updates[rng.Intn(len(app.Updates))], st)
					if _, _, err := client.Update(u, params...); err != nil {
						t.Fatalf("step %d update %s%v: %v", step, u.ID, params, err)
					}
				}
			}
			if hits == 0 {
				t.Error("cache never hit; pathway broken")
			}
			cs := client.Node.Cache.Stats()
			if cs.Stores == 0 || cs.UpdatesSeen == 0 {
				t.Errorf("stats implausible: %+v", cs)
			}
		})
	}
}

func queryParams(rng *rand.Rand, q *template.Template) []interface{} {
	switch q.ID {
	case "Q1", "Q4":
		return []interface{}{toyNames[rng.Intn(len(toyNames))]}
	case "Q2":
		return []interface{}{1 + rng.Intn(10)}
	case "Q3":
		return []interface{}{fmt.Sprintf("152%02d", rng.Intn(3))}
	case "Q7":
		return []interface{}{rng.Intn(20)}
	default:
		return nil
	}
}

// genState tracks fresh primary keys and customers that do not yet have a
// credit card (credit_card.cid is both primary key and foreign key, so each
// customer gets at most one card).
type genState struct {
	nextToy, nextCust int64
	cardless          []int64
}

func newGenState() *genState { return &genState{nextToy: 100, nextCust: 100} }

// updateParams picks parameters for an update template; it may substitute
// another template when the chosen one has no valid parameters (e.g. a card
// insertion with no cardless customer) and returns the template used.
func updateParams(rng *rand.Rand, app *template.App, u *template.Template, st *genState) (*template.Template, []interface{}) {
	switch u.ID {
	case "U1":
		return u, []interface{}{1 + rng.Intn(12)}
	case "U2":
		if len(st.cardless) == 0 {
			return updateParams(rng, app, app.Update("U6"), st)
		}
		cid := st.cardless[len(st.cardless)-1]
		st.cardless = st.cardless[:len(st.cardless)-1]
		return u, []interface{}{int(cid), "4111", fmt.Sprintf("152%02d", rng.Intn(3))}
	case "U3":
		st.nextToy++
		return u, []interface{}{int(st.nextToy), toyNames[rng.Intn(len(toyNames))], rng.Intn(25)}
	case "U4":
		return u, []interface{}{rng.Intn(25), 1 + rng.Intn(12)}
	case "U5":
		return u, []interface{}{rng.Intn(5)}
	case "U6":
		st.nextCust++
		st.cardless = append(st.cardless, st.nextCust)
		return u, []interface{}{int(st.nextCust), "newbie"}
	default:
		return u, nil
	}
}

// TestHitRateOrdering: with everything else equal, higher exposure must
// yield at least as many hits (fewer invalidations) over the same
// workload — the scalability mechanism of the paper.
func TestHitRateOrdering(t *testing.T) {
	app := richApp()
	scenarios := exposureScenarios(app)
	order := []string{"MVIS", "MSIS", "MTIS", "MBS"}
	hitRates := make(map[string]float64)
	for _, name := range order {
		rng := rand.New(rand.NewSource(7))
		client, db := newStack(t, app, scenarios[name])
		seed(t, db, rng)
		st := newGenState()
		for step := 0; step < 2000; step++ {
			if rng.Intn(100) < 85 {
				q := app.Queries[rng.Intn(len(app.Queries))]
				if _, err := client.Query(q, queryParams(rng, q)...); err != nil {
					t.Fatal(err)
				}
			} else {
				u, params := updateParams(rng, app, app.Updates[rng.Intn(len(app.Updates))], st)
				if _, _, err := client.Update(u, params...); err != nil {
					t.Fatal(err)
				}
			}
		}
		cs := client.Node.Cache.Stats()
		hitRates[name] = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	for i := 1; i < len(order); i++ {
		if hitRates[order[i-1]] < hitRates[order[i]] {
			t.Errorf("hit rate ordering violated: %v", hitRates)
		}
	}
	if hitRates["MVIS"] <= hitRates["MBS"] {
		t.Errorf("view inspection should beat blind: %v", hitRates)
	}
}

// TestMethodologyPreservesHitRate: the §3 claim — the reduced-exposure
// assignment must achieve the same cache behaviour as the Step 1 baseline
// on the same workload.
func TestMethodologyPreservesHitRate(t *testing.T) {
	app := richApp()
	scenarios := exposureScenarios(app)
	run := func(exps map[string]template.Exposure) cache.Stats {
		rng := rand.New(rand.NewSource(11))
		client, db := newStack(t, app, exps)
		seed(t, db, rng)
		st := newGenState()
		for step := 0; step < 2000; step++ {
			if rng.Intn(100) < 85 {
				q := app.Queries[rng.Intn(len(app.Queries))]
				if _, err := client.Query(q, queryParams(rng, q)...); err != nil {
					t.Fatal(err)
				}
			} else {
				u, params := updateParams(rng, app, app.Updates[rng.Intn(len(app.Updates))], st)
				if _, _, err := client.Update(u, params...); err != nil {
					t.Fatal(err)
				}
			}
		}
		return client.Node.Cache.Stats()
	}
	_ = scenarios
	m := core.Methodology{App: app, Compulsory: core.ExposureAssignment{"U2": template.ExpTemplate},
		Opts: core.DefaultOptions()}
	r := m.Run()
	// Step 2b must not change cache behaviour relative to the Step 1
	// baseline (compulsory encryption applied, everything else fully
	// exposed). Step 1 itself may cost scalability; Step 2b never does.
	initial := run(r.Initial)
	final := run(r.Final)
	if final.Hits != initial.Hits || final.Invalidations != initial.Invalidations {
		t.Errorf("exposure reduction changed cache behaviour: initial=%+v final=%+v", initial, final)
	}
	// And the reduction is real: strictly more templates encrypted.
	if core.EncryptedResultCount(app, r.Final) <= core.EncryptedResultCount(app, r.Initial) {
		t.Error("reduction achieved no additional encryption")
	}
}

func TestParamsConversion(t *testing.T) {
	vals, err := Params(1, int64(2), 3.5, "x", sqlparse.Null())
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Int != 1 || vals[1].Int != 2 || vals[2].Float != 3.5 || vals[3].Str != "x" || !vals[4].IsNull() {
		t.Errorf("vals = %v", vals)
	}
	if _, err := Params(struct{}{}); err == nil {
		t.Error("unsupported type accepted")
	}
}
