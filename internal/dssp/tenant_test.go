package dssp

import (
	"bytes"
	"testing"

	"dssp/internal/apps"
	"dssp/internal/core"
	"dssp/internal/encrypt"
	"dssp/internal/engine"
	"dssp/internal/sqlparse"
	"dssp/internal/wire"
)

// tenantStack builds a tenant with its own keyring.
func tenantStack(t *testing.T, keyByte byte) (*wire.Codec, *core.Analysis) {
	t.Helper()
	app := apps.Toystore()
	key := bytes.Repeat([]byte{keyByte}, encrypt.KeySize)
	codec := wire.NewCodec(app, encrypt.MustNewKeyring(key), nil)
	return codec, core.Analyze(app, core.DefaultOptions())
}

func TestMultiNodeRouting(t *testing.T) {
	m := NewMultiNode(0)
	appA := apps.Toystore()
	appA.Name = "tenant-a"
	appB := apps.Toystore()
	appB.Name = "tenant-b"
	codecA := wire.NewCodec(appA, encrypt.MustNewKeyring(bytes.Repeat([]byte{1}, encrypt.KeySize)), nil)
	codecB := wire.NewCodec(appB, encrypt.MustNewKeyring(bytes.Repeat([]byte{2}, encrypt.KeySize)), nil)
	if _, err := m.Register(appA, core.Analyze(appA, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(appB, core.Analyze(appB, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(appA, nil); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if got := m.Tenants(); len(got) != 2 || got[0] != "tenant-a" {
		t.Errorf("Tenants = %v", got)
	}

	res := &engine.Result{Columns: []string{"qty"}, Rows: [][]sqlparse.Value{{sqlparse.IntVal(25)}}}
	sqA, _ := codecA.SealQuery(appA.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(5)})
	if err := m.StoreResult("tenant-a", sqA, codecA.SealResult(appA.Query("Q2"), res), false); err != nil {
		t.Fatal(err)
	}

	// Tenant A hits its own entry.
	if _, hit, err := m.HandleQuery("tenant-a", sqA); err != nil || !hit {
		t.Errorf("tenant-a lookup: hit=%v err=%v", hit, err)
	}
	// Tenant B, asking the same logical question, cannot see tenant A's
	// entry: its sealed query carries B's key material.
	sqB, _ := codecB.SealQuery(appB.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(5)})
	if _, hit, err := m.HandleQuery("tenant-b", sqB); err != nil || hit {
		t.Errorf("cross-tenant hit: hit=%v err=%v", hit, err)
	}
	// Even replaying A's sealed bytes at B's tenant misses (different
	// cache) — and B could not decrypt the result anyway.
	if _, hit, _ := m.HandleQuery("tenant-b", sqA); hit {
		t.Error("replayed sealed query hit another tenant's cache")
	}

	// Unknown tenants are rejected.
	if _, _, err := m.HandleQuery("nope", sqA); err == nil {
		t.Error("unknown tenant accepted")
	}
	if err := m.StoreResult("nope", sqA, wire.SealedResult{}, false); err == nil {
		t.Error("unknown tenant store accepted")
	}
	if _, err := m.OnUpdateCompleted("nope", wire.SealedUpdate{}); err == nil {
		t.Error("unknown tenant update accepted")
	}
}

func TestMultiNodeUpdateIsolation(t *testing.T) {
	m := NewMultiNode(0)
	appA := apps.Toystore()
	appA.Name = "a"
	appB := apps.Toystore()
	appB.Name = "b"
	codecA := wire.NewCodec(appA, encrypt.MustNewKeyring(bytes.Repeat([]byte{1}, encrypt.KeySize)), nil)
	codecB := wire.NewCodec(appB, encrypt.MustNewKeyring(bytes.Repeat([]byte{2}, encrypt.KeySize)), nil)
	_, _ = m.Register(appA, core.Analyze(appA, core.DefaultOptions()))
	_, _ = m.Register(appB, core.Analyze(appB, core.DefaultOptions()))

	res := &engine.Result{Columns: []string{"qty"}, Rows: [][]sqlparse.Value{{sqlparse.IntVal(25)}}}
	sqA, _ := codecA.SealQuery(appA.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(5)})
	sqB, _ := codecB.SealQuery(appB.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(5)})
	_ = m.StoreResult("a", sqA, codecA.SealResult(appA.Query("Q2"), res), false)
	_ = m.StoreResult("b", sqB, codecB.SealResult(appB.Query("Q2"), res), false)
	if m.TotalEntries() != 2 {
		t.Fatalf("entries = %d", m.TotalEntries())
	}

	// An update in tenant A must not invalidate tenant B's cache.
	suA, _ := codecA.SealUpdate(appA.Update("U1"), []sqlparse.Value{sqlparse.IntVal(5)})
	n, err := m.OnUpdateCompleted("a", suA)
	if err != nil || n != 1 {
		t.Fatalf("invalidated %d, err %v", n, err)
	}
	if _, hit, _ := m.HandleQuery("b", sqB); !hit {
		t.Error("tenant B's entry lost to tenant A's update")
	}
}

func TestMultiNodeCapacitySplit(t *testing.T) {
	m := NewMultiNode(10)
	appA := apps.Toystore()
	appA.Name = "a"
	appB := apps.Toystore()
	appB.Name = "b"
	nodeA, err := m.Register(appA, core.Analyze(appA, core.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(appB, core.Analyze(appB, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	codecA, _ := tenantStack(t, 1)
	res := &engine.Result{Columns: []string{"qty"}, Rows: [][]sqlparse.Value{{sqlparse.IntVal(1)}}}
	for i := int64(0); i < 30; i++ {
		sq, _ := codecA.SealQuery(appA.Query("Q2"), []sqlparse.Value{sqlparse.IntVal(i)})
		nodeA.StoreResult(sq, codecA.SealResult(appA.Query("Q2"), res), false)
	}
	// Tenant A was registered first (capacity 10 at the time), but the
	// division happens at registration; what matters is the bound holds.
	if got := nodeA.Cache.Len(); got > 10 {
		t.Errorf("tenant cache exceeded its budget: %d", got)
	}
}
