// Package dssp assembles the Database Scalability Service Provider node of
// Figure 1/2: the untrusted cache of (possibly encrypted) query results,
// the mixed invalidation strategy dispatch, and the query/update pathways
// between clients and the application's home server.
//
// The node never holds encryption keys. Everything it learns comes from
// the exposure levels chosen by the application's administrator; the rest
// passes through as opaque ciphertext.
package dssp

import (
	"context"
	"sync"
	"time"

	"dssp/internal/cache"
	"dssp/internal/core"
	hometier "dssp/internal/home"
	"dssp/internal/homeserver"
	"dssp/internal/invalidate"
	"dssp/internal/obs"
	"dssp/internal/pipeline"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// Node is one DSSP node serving a single application.
type Node struct {
	App   *template.App
	Cache *cache.Cache
}

// NewNode builds a DSSP node using the given static analysis (which
// determines template-inspection decisions).
func NewNode(app *template.App, analysis *core.Analysis, opts cache.Options) *Node {
	inv := invalidate.New(app, analysis)
	return &Node{App: app, Cache: cache.New(app, inv, opts)}
}

// HandleQuery serves a sealed query from the cache, reporting whether it
// was a hit.
func (n *Node) HandleQuery(q wire.SealedQuery) (wire.SealedResult, bool) {
	return n.Cache.Lookup(q)
}

// StoreResult caches a result fetched from the home server on a miss.
func (n *Node) StoreResult(q wire.SealedQuery, r wire.SealedResult, empty bool) {
	n.Cache.Store(q, r, empty)
}

// OnUpdateCompleted runs invalidation after the home server confirms an
// update, returning the number of cache entries invalidated.
func (n *Node) OnUpdateCompleted(u wire.SealedUpdate) int {
	return n.Cache.OnUpdate(u)
}

// OnUpdatesCompleted runs invalidation for one monitoring interval's
// batch of confirmed updates in a single amortized pass, returning
// per-update invalidation counts (identical, update for update, to
// sequential OnUpdateCompleted calls).
func (n *Node) OnUpdatesCompleted(us []wire.SealedUpdate) []int {
	return n.Cache.OnUpdateBatchCounts(us)
}

// Client is the trusted, application-side driver of the in-process
// deployment: it seals statements, routes them through the shared
// pipeline (direct transport to the home server), and opens results. The
// HTTP deployment and the discrete-event simulator route through the same
// pipeline with their own transports.
type Client struct {
	Codec *wire.Codec
	Node  *Node
	Home  *homeserver.Server

	// Tracer, when set, records per-stage spans (seal, cache_lookup,
	// network, invalidate, open) and the end-to-end request histogram for
	// every statement routed through the client. nil disables tracing.
	Tracer *obs.Tracer

	// MonitorInterval, when positive, batches this node's invalidation
	// per monitoring interval (§2.2): updates confirm immediately at the
	// home server but their cache invalidation — and the Update call's
	// return — waits for the next interval flush. Set before the first
	// statement; the pipeline is built once.
	MonitorInterval time.Duration

	// Leakage, when set, audits the sealed traffic at the node trust
	// boundary (the adversary's-eye measurement). Set before the first
	// statement.
	Leakage pipeline.LeakageObserver

	// HomeReplicas, when non-empty, scales the trusted tier out: the
	// client's transport becomes a pipeline.ReplicaSet over these read
	// replicas (misses spread across them under the freshness floor,
	// updates still execute on Home), and Home's confirmation sink feeds
	// each replica the confirmed-update stream. Set before the first
	// statement; Home must not already have an OnConfirm sink.
	HomeReplicas []*hometier.Replica

	// HomeParts, when set, makes the trusted tier a partitioned master
	// (one primary per table-group partition, each with its own write
	// lock and sequence stream): statements route by their group, and the
	// freshness floor becomes a per-partition vector. Home should then be
	// HomeParts.Part(0), kept for code that inspects the primary
	// directly; HomeReplicas is ignored in this mode (wire per-partition
	// replicas onto HomeParts' servers instead). Set before the first
	// statement.
	HomeParts *hometier.Partitioned

	pipeOnce sync.Once
	pipe     *pipeline.Pipeline
}

// Pipeline returns the client's query/update pathway, built on first use
// from the client's node, home server, replicas, and tracer.
func (c *Client) Pipeline() *pipeline.Pipeline {
	c.pipeOnce.Do(func() {
		opts := pipeline.Options{MonitorInterval: c.MonitorInterval, Leakage: c.Leakage}
		if c.HomeParts != nil {
			opts.Fresh = pipeline.NewFreshnessParts(c.HomeParts.Parts())
			c.pipe = pipeline.New(c.Node, c.HomeParts.Transport(), c.Tracer, opts)
			return
		}
		var transport pipeline.Transport = pipeline.NewDirectTransport(c.Home)
		if len(c.HomeReplicas) > 0 {
			hometier.Feed(c.Home, c.HomeReplicas...)
			opts.Fresh = pipeline.NewFreshness()
			var reg *obs.Registry
			if c.Tracer != nil {
				reg = c.Tracer.Registry()
			}
			transport = pipeline.NewReplicaSet(transport, hometier.Endpoints(c.HomeReplicas), opts.Fresh, reg)
		}
		c.pipe = pipeline.New(c.Node, transport, c.Tracer, opts)
	})
	return c.pipe
}

// QueryOutcome describes how a query was served.
type QueryOutcome struct {
	Hit     bool
	Rows    int
	Scanned int // base rows scanned at the home server (0 on a hit)
}

// Query executes one query template instance end to end.
func (c *Client) Query(t *template.Template, params ...interface{}) (*QueryResult, error) {
	vals, err := Params(params...)
	if err != nil {
		return nil, err
	}
	start := c.Tracer.Now()
	sq, err := c.Codec.SealQuery(t, vals)
	if err != nil {
		return nil, err
	}
	sq.ParentSpan = c.Tracer.ObserveSpan(obs.SpanRecord{
		Trace: sq.TraceID, Stage: obs.StageSeal, Template: t.ID,
		Start: start, Duration: c.Tracer.Now() - start,
	})
	reply, err := c.Pipeline().QuerySync(context.Background(), sq)
	if err != nil {
		return nil, err
	}
	op := c.Tracer.Start(sq.TraceID, obs.StageOpen, t.ID)
	res, err := c.Codec.OpenResult(reply.Result)
	if err != nil {
		return nil, err
	}
	op.End()
	return &QueryResult{Result: res, Outcome: QueryOutcome{
		Hit:     reply.Hit,
		Rows:    res.Len(),
		Scanned: reply.Scanned,
	}}, nil
}

// Update executes one update template instance end to end: the update is
// routed (encrypted) via the DSSP to the home server, and the DSSP
// invalidates after completion (Figure 2).
func (c *Client) Update(t *template.Template, params ...interface{}) (affected, invalidated int, err error) {
	vals, err := Params(params...)
	if err != nil {
		return 0, 0, err
	}
	start := c.Tracer.Now()
	su, err := c.Codec.SealUpdate(t, vals)
	if err != nil {
		return 0, 0, err
	}
	su.ParentSpan = c.Tracer.ObserveSpan(obs.SpanRecord{
		Trace: su.TraceID, Stage: obs.StageSeal, Template: t.ID,
		Start: start, Duration: c.Tracer.Now() - start,
	})
	reply, err := c.Pipeline().UpdateSync(context.Background(), su)
	if err != nil {
		return 0, 0, err
	}
	return reply.Affected, reply.Invalidated, nil
}
