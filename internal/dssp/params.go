package dssp

import (
	"fmt"

	"dssp/internal/engine"
	"dssp/internal/sqlparse"
)

// QueryResult pairs a plaintext result with how it was served.
type QueryResult struct {
	Result  *engine.Result
	Outcome QueryOutcome
}

// Params converts Go values to SQL parameter values. Supported types:
// int, int64, float64, string, and sqlparse.Value (passed through).
func Params(args ...interface{}) ([]sqlparse.Value, error) {
	vals := make([]sqlparse.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			vals[i] = sqlparse.IntVal(int64(v))
		case int64:
			vals[i] = sqlparse.IntVal(v)
		case float64:
			vals[i] = sqlparse.FloatVal(v)
		case string:
			vals[i] = sqlparse.StringVal(v)
		case sqlparse.Value:
			vals[i] = v
		default:
			return nil, fmt.Errorf("dssp: unsupported parameter type %T", a)
		}
	}
	return vals, nil
}
