package dssp

import (
	"fmt"
	"sort"
	"sync"

	"dssp/internal/cache"
	"dssp/internal/core"
	"dssp/internal/obs"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// MultiNode is a shared DSSP node hosting many applications, the
// cost-effectiveness premise of §1: a DSSP must cache data from the home
// servers of many applications on common infrastructure — which is exactly
// why its administrators are untrusted and encryption matters.
//
// Isolation is structural: every tenant has its own cache, its own static
// analysis, and (on the trusted side) its own keyring; a sealed message is
// routed by tenant name and can never be answered from another tenant's
// entries. Cross-tenant reads are impossible by construction, and the
// deterministic ciphertexts of different tenants never collide because
// their keyrings differ.
type MultiNode struct {
	mu      sync.RWMutex
	tenants map[string]*Node

	// Capacity, when positive, is the total entry budget shared by all
	// tenants; it is divided evenly among them at registration.
	capacity int

	// reg aggregates every tenant's cache instruments; each tenant's
	// metrics carry a tenant label, so the shared node exposes one
	// snapshot with per-tenant breakdowns.
	reg *obs.Registry
}

// NewMultiNode creates an empty shared node. totalCapacity <= 0 leaves all
// tenant caches unbounded.
func NewMultiNode(totalCapacity int) *MultiNode {
	return &MultiNode{tenants: make(map[string]*Node), capacity: totalCapacity, reg: obs.NewRegistry()}
}

// Obs returns the shared node's registry: every tenant's cache metrics,
// labeled by tenant.
func (m *MultiNode) Obs() *obs.Registry { return m.reg }

// Register adds an application as a tenant. The application's name is its
// tenant identity and must be unique on the node.
func (m *MultiNode) Register(app *template.App, analysis *core.Analysis) (*Node, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tenants[app.Name]; dup {
		return nil, fmt.Errorf("dssp: tenant %q already registered", app.Name)
	}
	opts := cache.Options{Obs: m.reg, Tenant: app.Name}
	m.tenants[app.Name] = nil // reserve before re-dividing capacity
	if m.capacity > 0 {
		opts.Capacity = m.capacity / len(m.tenants)
		if opts.Capacity < 1 {
			opts.Capacity = 1
		}
	}
	n := NewNode(app, analysis, opts)
	m.tenants[app.Name] = n
	return n, nil
}

// Tenant returns the node serving the named application, or nil.
func (m *MultiNode) Tenant(app string) *Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tenants[app]
}

// Tenants lists tenant names in sorted order.
func (m *MultiNode) Tenants() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HandleQuery routes a sealed query to its tenant's cache.
func (m *MultiNode) HandleQuery(tenant string, q wire.SealedQuery) (wire.SealedResult, bool, error) {
	n := m.Tenant(tenant)
	if n == nil {
		return wire.SealedResult{}, false, fmt.Errorf("dssp: unknown tenant %q", tenant)
	}
	r, hit := n.HandleQuery(q)
	return r, hit, nil
}

// StoreResult stores a fetched result in the tenant's cache.
func (m *MultiNode) StoreResult(tenant string, q wire.SealedQuery, r wire.SealedResult, empty bool) error {
	n := m.Tenant(tenant)
	if n == nil {
		return fmt.Errorf("dssp: unknown tenant %q", tenant)
	}
	n.StoreResult(q, r, empty)
	return nil
}

// OnUpdateCompleted runs invalidation for the tenant that issued the
// update. Other tenants' caches are untouched: applications interact with
// disjoint home databases.
func (m *MultiNode) OnUpdateCompleted(tenant string, u wire.SealedUpdate) (int, error) {
	n := m.Tenant(tenant)
	if n == nil {
		return 0, fmt.Errorf("dssp: unknown tenant %q", tenant)
	}
	return n.OnUpdateCompleted(u), nil
}

// TotalEntries returns the number of cached entries across all tenants.
func (m *MultiNode) TotalEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, t := range m.tenants {
		if t != nil {
			n += t.Cache.Len()
		}
	}
	return n
}
