package engine

import (
	"fmt"

	"dssp/internal/sqlparse"
	"dssp/internal/storage"
)

// ExecUpdate applies an insertion, deletion, or modification with the
// given parameter values and returns the number of rows affected.
func ExecUpdate(db *storage.Database, stmt sqlparse.Statement, params []sqlparse.Value) (int, error) {
	switch s := stmt.(type) {
	case *sqlparse.InsertStmt:
		return execInsert(db, s, params)
	case *sqlparse.DeleteStmt:
		return execDelete(db, s, params)
	case *sqlparse.UpdateStmt:
		return execModify(db, s, params)
	default:
		return 0, fmt.Errorf("engine: %T is not an update statement", stmt)
	}
}

func bindOperand(o sqlparse.Operand, params []sqlparse.Value) (sqlparse.Value, error) {
	switch o.Kind {
	case sqlparse.OpConst:
		return o.Const, nil
	case sqlparse.OpParam:
		if o.Param >= len(params) {
			return sqlparse.Value{}, fmt.Errorf("engine: statement requires parameter %d but only %d bound", o.Param, len(params))
		}
		return params[o.Param], nil
	default:
		return sqlparse.Value{}, fmt.Errorf("engine: operand %s is not a value", o)
	}
}

// InsertedRow materializes the full row (in column order) that an insertion
// statement adds, binding parameters. Columns the statement does not name
// are NULL — matching SQL semantics for tables without defaults — except
// primary-key columns, which every row must bind. The DSSP's
// statement-inspection strategy reasons over this row, so its NULL
// semantics (a NULL never satisfies a predicate, never joins, and never
// enters an aggregate) must agree with the engine's; see RowMatches.
func InsertedRow(db *storage.Database, s *sqlparse.InsertStmt, params []sqlparse.Value) (storage.Row, error) {
	t := db.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	row := make(storage.Row, len(t.Meta.Columns))
	seen := make([]bool, len(row))
	for i, c := range s.Columns {
		ci := t.Meta.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", s.Table, c)
		}
		v, err := bindOperand(s.Values[i], params)
		if err != nil {
			return nil, err
		}
		row[ci] = v
		seen[ci] = true
	}
	for ci, ok := range seen {
		if !ok {
			name := t.Meta.Columns[ci].Name
			if t.Meta.IsPrimaryKeyColumn(name) {
				return nil, fmt.Errorf("engine: INSERT into %q does not set key column %q", s.Table, name)
			}
			// Unnamed non-key column: the zero Value is NULL.
		}
	}
	return row, nil
}

func execInsert(db *storage.Database, s *sqlparse.InsertStmt, params []sqlparse.Value) (int, error) {
	row, err := InsertedRow(db, s, params)
	if err != nil {
		return 0, err
	}
	if err := db.Insert(s.Table, row); err != nil {
		return 0, err
	}
	return 1, nil
}

// RowMatches evaluates a conjunctive single-table predicate list against a
// row of the named table. Both the deletion path and the view-inspection
// invalidation strategy use it.
func RowMatches(db *storage.Database, table string, where []sqlparse.Predicate, params []sqlparse.Value, row storage.Row) (bool, error) {
	t := db.Table(table)
	if t == nil {
		return false, fmt.Errorf("engine: unknown table %q", table)
	}
	for _, p := range where {
		l, err := sideValue(t, p.Left, params, row)
		if err != nil {
			return false, err
		}
		r, err := sideValue(t, p.Right, params, row)
		if err != nil {
			return false, err
		}
		if l.IsNull() || r.IsNull() {
			return false, nil
		}
		if !p.Op.Holds(l.Compare(r)) {
			return false, nil
		}
	}
	return true, nil
}

func sideValue(t *storage.Table, o sqlparse.Operand, params []sqlparse.Value, row storage.Row) (sqlparse.Value, error) {
	if o.Kind == sqlparse.OpColumn {
		ci := t.Meta.ColumnIndex(o.Col.Column)
		if ci < 0 {
			return sqlparse.Value{}, fmt.Errorf("engine: table %q has no column %q", t.Meta.Name, o.Col.Column)
		}
		return row[ci], nil
	}
	return bindOperand(o, params)
}

func execDelete(db *storage.Database, s *sqlparse.DeleteStmt, params []sqlparse.Value) (int, error) {
	var evalErr error
	n, err := db.Delete(s.Table, func(row storage.Row) bool {
		if evalErr != nil {
			return false
		}
		ok, err := RowMatches(db, s.Table, s.Where, params, row)
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return 0, evalErr
	}
	return n, err
}

// ModificationKey extracts the primary-key values selected by a
// modification statement, in primary-key order.
func ModificationKey(db *storage.Database, s *sqlparse.UpdateStmt, params []sqlparse.Value) ([]sqlparse.Value, error) {
	t := db.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	byCol := make(map[string]sqlparse.Value, len(s.Where))
	for _, p := range s.Where {
		col, other := p.Left, p.Right
		if col.Kind != sqlparse.OpColumn {
			col, other = p.Right, p.Left
		}
		v, err := bindOperand(other, params)
		if err != nil {
			return nil, err
		}
		byCol[col.Col.Column] = v
	}
	keyVals := make([]sqlparse.Value, 0, len(t.Meta.PrimaryKey))
	for _, k := range t.Meta.PrimaryKey {
		v, ok := byCol[k]
		if !ok {
			return nil, fmt.Errorf("engine: modification of %q does not bind key column %q", s.Table, k)
		}
		keyVals = append(keyVals, v)
	}
	return keyVals, nil
}

func execModify(db *storage.Database, s *sqlparse.UpdateStmt, params []sqlparse.Value) (int, error) {
	t := db.Table(s.Table)
	if t == nil {
		return 0, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	keyVals, err := ModificationKey(db, s, params)
	if err != nil {
		return 0, err
	}
	set := make(map[int]sqlparse.Value, len(s.Set))
	for _, a := range s.Set {
		ci := t.Meta.ColumnIndex(a.Column)
		if ci < 0 {
			return 0, fmt.Errorf("engine: table %q has no column %q", s.Table, a.Column)
		}
		v, err := bindOperand(a.Value, params)
		if err != nil {
			return 0, err
		}
		set[ci] = v
	}
	return db.UpdateByPK(s.Table, keyVals, set)
}
