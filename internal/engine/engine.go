// Package engine executes the paper's SQL subset over the in-memory store:
// select-project-join queries with conjunctive arithmetic predicates,
// optional GROUP BY/aggregation, ORDER BY, and top-k (LIMIT), plus the
// three update kinds (insertion, deletion, modification).
//
// Execution is deterministic: scans follow insertion order and sorts are
// stable, so repeated evaluation of a query over an unchanged database
// yields an identical Result. The DSSP consistency property tests rely on
// this.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"dssp/internal/schema"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
)

// Result is a materialized query result: the view cached by the DSSP.
//
// Ownership invariant: Rows never aliases storage. Every execution path
// builds result rows from freshly allocated []sqlparse.Value slices
// (projection copies value structs out of base rows; aggregation rows are
// computed), and sqlparse.Value is a pure value type with no pointers or
// slices. A Result is therefore immune to concurrent in-place mutation of
// the base tables it was computed from — callers may hold, serialize, or
// seal a Result after releasing the database lock. The homeserver relies
// on this to seal query results outside its read lock.
type Result struct {
	Columns []string
	Rows    [][]sqlparse.Value

	// RowsScanned counts base-table rows visited while computing the
	// result; the simulator uses it to charge data-dependent service time.
	RowsScanned int
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// Clone returns a deep copy of the result. sqlparse.Value is a pure value
// type, so copying each row slice severs every mutable link between the
// copy and the original; the wire codec uses this to uphold the ownership
// invariant for plaintext (view-exposure) results, whose sealed form would
// otherwise alias the DSSP's cached object.
func (r *Result) Clone() *Result {
	cp := &Result{
		Columns:     append([]string(nil), r.Columns...),
		Rows:        make([][]sqlparse.Value, len(r.Rows)),
		RowsScanned: r.RowsScanned,
	}
	for i, row := range r.Rows {
		cp.Rows[i] = append([]sqlparse.Value(nil), row...)
	}
	return cp
}

// Fingerprint returns a canonical encoding of the result under multiset
// semantics: row order is ignored unless ordered is true. Two results are
// semantically equal iff their fingerprints are equal.
func (r *Result) Fingerprint(ordered bool) string {
	enc := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		enc[i] = storage.Key(row)
	}
	if !ordered {
		sort.Strings(enc)
	}
	return strings.Join(enc, "\n")
}

// ColumnIndex returns the ordinal of the named output column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// ExecQuery evaluates a select statement with the given parameter values.
func ExecQuery(db *storage.Database, q *sqlparse.SelectStmt, params []sqlparse.Value) (*Result, error) {
	r, err := schema.NewResolver(db.Schema, q.From)
	if err != nil {
		return nil, err
	}
	ex := &queryExec{db: db, q: q, res: r, params: params}
	return ex.run()
}

type queryExec struct {
	db     *storage.Database
	q      *sqlparse.SelectStmt
	res    *schema.Resolver
	params []sqlparse.Value

	scanned int
	joinErr error
}

// tuple is one partial join result: one row per FROM entry (nil until
// bound).
type tuple []storage.Row

func (ex *queryExec) operandValue(o sqlparse.Operand, t tuple) (sqlparse.Value, error) {
	switch o.Kind {
	case sqlparse.OpConst:
		return o.Const, nil
	case sqlparse.OpParam:
		if o.Param >= len(ex.params) {
			return sqlparse.Value{}, fmt.Errorf("engine: statement requires parameter %d but only %d bound", o.Param, len(ex.params))
		}
		return ex.params[o.Param], nil
	case sqlparse.OpColumn:
		rc, err := ex.res.Resolve(o.Col)
		if err != nil {
			return sqlparse.Value{}, err
		}
		if t == nil || t[rc.FromIndex] == nil {
			return sqlparse.Value{}, fmt.Errorf("engine: column %s evaluated before its table is bound", o.Col)
		}
		return t[rc.FromIndex][rc.ColIndex], nil
	default:
		return sqlparse.Value{}, fmt.Errorf("engine: bad operand kind %d", o.Kind)
	}
}

// predHolds evaluates a predicate against a (fully bound enough) tuple
// using SQL semantics: any comparison involving NULL is false.
func (ex *queryExec) predHolds(p sqlparse.Predicate, t tuple) (bool, error) {
	l, err := ex.operandValue(p.Left, t)
	if err != nil {
		return false, err
	}
	r, err := ex.operandValue(p.Right, t)
	if err != nil {
		return false, err
	}
	if l.IsNull() || r.IsNull() {
		return false, nil
	}
	return p.Op.Holds(l.Compare(r)), nil
}

// predTables returns the set of FROM indexes referenced by the predicate.
func (ex *queryExec) predTables(p sqlparse.Predicate) (map[int]bool, error) {
	tabs := make(map[int]bool, 2)
	for _, o := range []sqlparse.Operand{p.Left, p.Right} {
		if o.Kind == sqlparse.OpColumn {
			rc, err := ex.res.Resolve(o.Col)
			if err != nil {
				return nil, err
			}
			tabs[rc.FromIndex] = true
		}
	}
	return tabs, nil
}

func (ex *queryExec) run() (*Result, error) {
	// Partition predicates by the highest FROM index they reference, so
	// each is evaluated as soon as its tables are bound.
	n := len(ex.q.From)
	predsAt := make([][]sqlparse.Predicate, n)
	for _, p := range ex.q.Where {
		tabs, err := ex.predTables(p)
		if err != nil {
			return nil, err
		}
		maxT := 0
		for t := range tabs {
			if t > maxT {
				maxT = t
			}
		}
		predsAt[maxT] = append(predsAt[maxT], p)
	}

	var tuples []tuple
	if err := ex.join(0, make(tuple, n), predsAt, &tuples); err != nil {
		return nil, err
	}

	var out *Result
	var err error
	if ex.q.HasAggregate() || len(ex.q.GroupBy) > 0 {
		out, err = ex.aggregate(tuples)
	} else {
		out, err = ex.plain(tuples)
	}
	if err != nil {
		return nil, err
	}
	if ex.q.Limit >= 0 && len(out.Rows) > ex.q.Limit {
		out.Rows = out.Rows[:ex.q.Limit]
	}
	out.RowsScanned = ex.scanned
	return out, nil
}

// join binds FROM entry i for every partial tuple, applying the predicates
// that become fully bound at i. It uses an index or primary-key access path
// when an equality predicate supplies the value, and a full scan otherwise.
func (ex *queryExec) join(i int, t tuple, predsAt [][]sqlparse.Predicate, out *[]tuple) error {
	if i == len(t) {
		c := make(tuple, len(t))
		copy(c, t)
		*out = append(*out, c)
		return nil
	}
	tab := ex.db.Table(ex.res.Tables()[i].Name)

	// Find an equality predicate `col = v` where col is in table i and v is
	// computable now (constant, parameter, or column of an earlier table).
	type eqPath struct {
		colIdx int
		val    sqlparse.Value
	}
	var paths []eqPath
	for _, p := range predsAt[i] {
		if p.Op != sqlparse.OpEq {
			continue
		}
		for _, o := range [2][2]sqlparse.Operand{{p.Left, p.Right}, {p.Right, p.Left}} {
			col, other := o[0], o[1]
			if col.Kind != sqlparse.OpColumn {
				continue
			}
			rc, err := ex.res.Resolve(col.Col)
			if err != nil {
				return err
			}
			if rc.FromIndex != i {
				continue
			}
			if other.Kind == sqlparse.OpColumn {
				orc, err := ex.res.Resolve(other.Col)
				if err != nil {
					return err
				}
				if orc.FromIndex >= i {
					continue // not bound yet
				}
			}
			v, err := ex.operandValue(other, t)
			if err != nil {
				return err
			}
			paths = append(paths, eqPath{rc.ColIndex, v})
			break
		}
	}

	check := func(row storage.Row) error {
		t[i] = row
		for _, p := range predsAt[i] {
			ok, err := ex.predHolds(p, t)
			if err != nil {
				return err
			}
			if !ok {
				return errPredFailed
			}
		}
		return ex.join(i+1, t, predsAt, out)
	}
	visit := func(row storage.Row) bool {
		ex.scanned++
		if err := check(row); err != nil && err != errPredFailed {
			ex.joinErr = err
			return false
		}
		return true
	}

	defer func() { t[i] = nil }()

	// Prefer a single-column primary-key path, then any secondary index.
	pkIdx := tab.Meta.PKIndexes()
	for _, p := range paths {
		if len(pkIdx) == 1 && p.colIdx == pkIdx[0] {
			if row := tab.LookupPK([]sqlparse.Value{p.val}); row != nil {
				visit(row)
			}
			return ex.takeErr()
		}
	}
	for _, p := range paths {
		if tab.HasIndex(p.colIdx) {
			tab.LookupIndex(p.colIdx, p.val, visit)
			return ex.takeErr()
		}
	}
	tab.Scan(visit)
	return ex.takeErr()
}

// errPredFailed is a sentinel: the current tuple fails a predicate and is
// skipped. queryExec.joinErr carries real errors out of scan callbacks.
var errPredFailed = fmt.Errorf("engine: predicate not satisfied")

func (ex *queryExec) takeErr() error {
	err := ex.joinErr
	ex.joinErr = nil
	return err
}

// plain projects and orders a non-aggregate query.
func (ex *queryExec) plain(tuples []tuple) (*Result, error) {
	if len(ex.q.OrderBy) > 0 {
		keys, err := ex.orderKeysForTuples()
		if err != nil {
			return nil, err
		}
		less := func(a, b tuple) bool {
			for _, k := range keys {
				va := a[k.fromIndex][k.colIndex]
				vb := b[k.fromIndex][k.colIndex]
				c := va.Compare(vb)
				if c != 0 {
					if k.desc {
						return c > 0
					}
					return c < 0
				}
			}
			// Canonical tie-break on full tuple content: results must not
			// depend on physical row order, which index maintenance can
			// permute. Cached results stay byte-identical to re-execution.
			return compareTuples(a, b) < 0
		}
		if ex.q.Limit >= 0 {
			tuples = topK(tuples, ex.q.Limit, less)
		} else {
			sort.SliceStable(tuples, func(a, b int) bool { return less(tuples[a], tuples[b]) })
		}
	}

	cols, proj, err := ex.projection()
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: cols}
	for _, t := range tuples {
		row := make([]sqlparse.Value, len(proj))
		for i, p := range proj {
			row[i] = t[p.fromIndex][p.colIndex]
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// compareTuples orders two joined tuples by their full content.
func compareTuples(a, b tuple) int {
	for i := range a {
		for j := range a[i] {
			if c := a[i][j].Compare(b[i][j]); c != 0 {
				return c
			}
		}
	}
	return 0
}

type colSel struct {
	fromIndex int
	colIndex  int
}

type orderSel struct {
	fromIndex int
	colIndex  int
	desc      bool
}

// projection expands `*` and resolves plain select expressions.
func (ex *queryExec) projection() ([]string, []colSel, error) {
	var cols []string
	var sels []colSel
	for _, e := range ex.q.Select {
		if e.Star {
			for fi, tr := range ex.res.Tables() {
				for ci, c := range tr.Columns {
					cols = append(cols, c.Name)
					sels = append(sels, colSel{fi, ci})
				}
			}
			continue
		}
		rc, err := ex.res.Resolve(e.Col)
		if err != nil {
			return nil, nil, err
		}
		name := e.Col.Column
		if e.Alias != "" {
			name = e.Alias
		}
		cols = append(cols, name)
		sels = append(sels, colSel{rc.FromIndex, rc.ColIndex})
	}
	return cols, sels, nil
}

func (ex *queryExec) orderKeysForTuples() ([]orderSel, error) {
	keys := make([]orderSel, 0, len(ex.q.OrderBy))
	for _, k := range ex.q.OrderBy {
		rc, err := ex.res.Resolve(k.Col)
		if err != nil {
			return nil, err
		}
		keys = append(keys, orderSel{rc.FromIndex, rc.ColIndex, k.Desc})
	}
	return keys, nil
}
