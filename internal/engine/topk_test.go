package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestTopKMatchesStableSortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		items := make([]int, n)
		for i := range items {
			// A narrow value range forces duplicates, the case where
			// selection could diverge from a stable sort if the order
			// were not total on content.
			items[i] = rng.Intn(10)
		}
		k := rng.Intn(n + 10)
		want := append([]int(nil), items...)
		sort.SliceStable(want, func(a, b int) bool { return want[a] < want[b] })
		if k < len(want) {
			want = want[:k]
		}
		got := topK(append([]int(nil), items...), k, func(a, b int) bool { return a < b })
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d k=%d: topK=%v, stable sort prefix=%v", n, k, got, want)
		}
	}
}

func TestTopKZeroAndOversized(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	if got := topK([]int{3, 1, 2}, 0, less); len(got) != 0 {
		t.Errorf("k=0 returned %v", got)
	}
	if got := topK([]int{3, 1, 2}, 99, less); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("k>n returned %v", got)
	}
	if got := topK(nil, 5, less); len(got) != 0 {
		t.Errorf("empty input returned %v", got)
	}
}
