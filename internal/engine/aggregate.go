package engine

import (
	"fmt"
	"sort"

	"dssp/internal/sqlparse"
)

// aggregate evaluates aggregation/GROUP BY queries over the joined tuples.
// Output columns follow the SELECT list: group-by columns pass through and
// aggregates are computed per group. Without GROUP BY the whole input is a
// single group (COUNT of an empty input is 0; other aggregates are NULL).
// ORDER BY may reference group-by columns or aggregate aliases.
func (ex *queryExec) aggregate(tuples []tuple) (*Result, error) {
	type outCol struct {
		agg     sqlparse.AggFunc
		star    bool
		sel     colSel // source column (unused for COUNT(*))
		name    string
		isGroup bool // passes through the group key
	}
	var outs []outCol
	groupSels := make([]colSel, 0, len(ex.q.GroupBy))
	for _, g := range ex.q.GroupBy {
		rc, err := ex.res.Resolve(g)
		if err != nil {
			return nil, err
		}
		groupSels = append(groupSels, colSel{rc.FromIndex, rc.ColIndex})
	}
	isGroupCol := func(s colSel) bool {
		for _, g := range groupSels {
			if g == s {
				return true
			}
		}
		return false
	}
	for _, e := range ex.q.Select {
		name := e.Alias
		if name == "" {
			if e.Star {
				name = "count"
			} else {
				name = e.Col.Column
			}
		}
		oc := outCol{agg: e.Agg, star: e.Star, name: name}
		if !e.Star {
			rc, err := ex.res.Resolve(e.Col)
			if err != nil {
				return nil, err
			}
			oc.sel = colSel{rc.FromIndex, rc.ColIndex}
		}
		if e.Agg == sqlparse.AggNone {
			if e.Star {
				return nil, fmt.Errorf("engine: bare * cannot appear in an aggregate query")
			}
			if !isGroupCol(oc.sel) {
				return nil, fmt.Errorf("engine: non-aggregated column %s must appear in GROUP BY", e.Col)
			}
			oc.isGroup = true
		}
		outs = append(outs, oc)
	}

	// Group tuples. Without GROUP BY all tuples form one group keyed "".
	type group struct {
		key    []sqlparse.Value
		tuples []tuple
	}
	order := make([]string, 0)
	groups := make(map[string]*group)
	for _, t := range tuples {
		keyVals := make([]sqlparse.Value, len(groupSels))
		for i, g := range groupSels {
			keyVals[i] = t[g.fromIndex][g.colIndex]
		}
		k := fingerprintVals(keyVals)
		gr, ok := groups[k]
		if !ok {
			gr = &group{key: keyVals}
			groups[k] = gr
			order = append(order, k)
		}
		gr.tuples = append(gr.tuples, t)
	}
	if len(groupSels) == 0 && len(groups) == 0 {
		k := ""
		groups[k] = &group{}
		order = append(order, k)
	}

	out := &Result{}
	for _, oc := range outs {
		out.Columns = append(out.Columns, oc.name)
	}
	for _, k := range order {
		gr := groups[k]
		row := make([]sqlparse.Value, len(outs))
		for i, oc := range outs {
			if oc.isGroup {
				row[i] = gr.tuples[0][oc.sel.fromIndex][oc.sel.colIndex]
				continue
			}
			row[i] = computeAgg(oc.agg, oc.star, oc.sel, gr.tuples)
		}
		out.Rows = append(out.Rows, row)
	}

	if len(ex.q.OrderBy) > 0 {
		keys, err := ex.aggOrderKeys(out)
		if err != nil {
			return nil, err
		}
		less := func(a, b []sqlparse.Value) bool {
			for _, k := range keys {
				c := a[k.col].Compare(b[k.col])
				if c != 0 {
					if k.desc {
						return c > 0
					}
					return c < 0
				}
			}
			// Canonical tie-break on the full output row (see plain()).
			for i := range a {
				if c := a[i].Compare(b[i]); c != 0 {
					return c < 0
				}
			}
			return false
		}
		if ex.q.Limit >= 0 {
			out.Rows = topK(out.Rows, ex.q.Limit, less)
		} else {
			sort.SliceStable(out.Rows, func(a, b int) bool { return less(out.Rows[a], out.Rows[b]) })
		}
	}
	return out, nil
}

type aggOrderKey struct {
	col  int
	desc bool
}

// aggOrderKeys resolves ORDER BY keys of an aggregate query against the
// output columns (group-by column names or aggregate aliases).
func (ex *queryExec) aggOrderKeys(out *Result) ([]aggOrderKey, error) {
	keys := make([]aggOrderKey, 0, len(ex.q.OrderBy))
	for _, k := range ex.q.OrderBy {
		ci := out.ColumnIndex(k.Col.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: ORDER BY %s must name an output column of the aggregate query", k.Col)
		}
		keys = append(keys, aggOrderKey{ci, k.Desc})
	}
	return keys, nil
}

func computeAgg(agg sqlparse.AggFunc, star bool, sel colSel, tuples []tuple) sqlparse.Value {
	if agg == sqlparse.AggCount {
		if star {
			return sqlparse.IntVal(int64(len(tuples)))
		}
		n := int64(0)
		for _, t := range tuples {
			if !t[sel.fromIndex][sel.colIndex].IsNull() {
				n++
			}
		}
		return sqlparse.IntVal(n)
	}
	var acc sqlparse.Value // NULL until a non-null input is seen
	n := int64(0)
	var sum float64
	allInt := true
	for _, t := range tuples {
		v := t[sel.fromIndex][sel.colIndex]
		if v.IsNull() {
			continue
		}
		n++
		switch agg {
		case sqlparse.AggMin:
			if acc.IsNull() || v.Compare(acc) < 0 {
				acc = v
			}
		case sqlparse.AggMax:
			if acc.IsNull() || v.Compare(acc) > 0 {
				acc = v
			}
		case sqlparse.AggSum, sqlparse.AggAvg:
			if v.Kind != sqlparse.KindInt {
				allInt = false
			}
			sum += v.AsFloat()
			acc = sqlparse.IntVal(0) // mark non-empty
		}
	}
	switch agg {
	case sqlparse.AggMin, sqlparse.AggMax:
		return acc
	case sqlparse.AggSum:
		if n == 0 {
			return sqlparse.Null()
		}
		if allInt {
			return sqlparse.IntVal(int64(sum))
		}
		return sqlparse.FloatVal(sum)
	case sqlparse.AggAvg:
		if n == 0 {
			return sqlparse.Null()
		}
		return sqlparse.FloatVal(sum / float64(n))
	default:
		return sqlparse.Null()
	}
}

func fingerprintVals(vals []sqlparse.Value) string {
	r := Result{Rows: [][]sqlparse.Value{vals}}
	return r.Fingerprint(true)
}
