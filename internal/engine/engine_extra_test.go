package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"dssp/internal/schema"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
)

// compositeDB builds a table with a composite primary key.
func compositeDB(t *testing.T) *storage.Database {
	t.Helper()
	s := schema.New()
	s.MustAddTable("lines", []schema.Column{
		{Name: "order_id", Type: schema.TInt},
		{Name: "line_no", Type: schema.TInt},
		{Name: "item", Type: schema.TString},
		{Name: "qty", Type: schema.TInt},
	}, "order_id", "line_no")
	db := storage.NewDatabase(s)
	for o := int64(1); o <= 3; o++ {
		for l := int64(1); l <= 4; l++ {
			mustInsert(t, db, "lines", storage.Row{
				sqlparse.IntVal(o), sqlparse.IntVal(l),
				sqlparse.StringVal(fmt.Sprintf("item%d", l)), sqlparse.IntVal(o * l),
			})
		}
	}
	return db
}

func TestCompositePrimaryKey(t *testing.T) {
	db := compositeDB(t)
	// Duplicate composite key rejected.
	err := db.Insert("lines", storage.Row{sqlparse.IntVal(1), sqlparse.IntVal(1), sqlparse.StringVal("x"), sqlparse.IntVal(1)})
	if err == nil {
		t.Error("duplicate composite key accepted")
	}
	// Same first column, different second: fine.
	if err := db.Insert("lines", storage.Row{sqlparse.IntVal(1), sqlparse.IntVal(9), sqlparse.StringVal("x"), sqlparse.IntVal(1)}); err != nil {
		t.Errorf("distinct composite key rejected: %v", err)
	}
}

func TestCompositeKeyModification(t *testing.T) {
	db := compositeDB(t)
	n := update(t, db, "UPDATE lines SET qty=? WHERE order_id=? AND line_no=?",
		sqlparse.IntVal(99), sqlparse.IntVal(2), sqlparse.IntVal(3))
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	res := query(t, db, "SELECT qty FROM lines WHERE order_id=? AND line_no=?", sqlparse.IntVal(2), sqlparse.IntVal(3))
	if res.Rows[0][0].Int != 99 {
		t.Errorf("qty = %v", res.Rows[0][0])
	}
}

func TestCompositeKeyPartialPredicate(t *testing.T) {
	db := compositeDB(t)
	res := query(t, db, "SELECT line_no FROM lines WHERE order_id=?", sqlparse.IntVal(2))
	if res.Len() != 4 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestThreeWayJoin(t *testing.T) {
	s := schema.New()
	s.MustAddTable("a", []schema.Column{{Name: "ai", Type: schema.TInt}, {Name: "av", Type: schema.TString}}, "ai")
	s.MustAddTable("b", []schema.Column{{Name: "bi", Type: schema.TInt}, {Name: "ba", Type: schema.TInt}}, "bi")
	s.MustAddTable("c", []schema.Column{{Name: "ci", Type: schema.TInt}, {Name: "cb", Type: schema.TInt}}, "ci")
	db := storage.NewDatabase(s)
	for i := int64(1); i <= 3; i++ {
		mustInsert(t, db, "a", storage.Row{sqlparse.IntVal(i), sqlparse.StringVal(fmt.Sprintf("v%d", i))})
		mustInsert(t, db, "b", storage.Row{sqlparse.IntVal(i + 10), sqlparse.IntVal(i)})
		mustInsert(t, db, "c", storage.Row{sqlparse.IntVal(i + 20), sqlparse.IntVal(i + 10)})
	}
	res := query(t, db, "SELECT av, ci FROM a, b, c WHERE ba=ai AND cb=bi AND ai=?", sqlparse.IntVal(2))
	if res.Len() != 1 || res.Rows[0][0].Str != "v2" || res.Rows[0][1].Int != 22 {
		t.Fatalf("res = %+v", res.Rows)
	}
}

func TestFloatColumns(t *testing.T) {
	s := schema.New()
	s.MustAddTable("m", []schema.Column{{Name: "id", Type: schema.TInt}, {Name: "x", Type: schema.TFloat}}, "id")
	db := storage.NewDatabase(s)
	for i := int64(1); i <= 5; i++ {
		mustInsert(t, db, "m", storage.Row{sqlparse.IntVal(i), sqlparse.FloatVal(float64(i) / 2)})
	}
	res := query(t, db, "SELECT id FROM m WHERE x>?", sqlparse.FloatVal(1.2))
	if res.Len() != 3 { // 1.5, 2.0, 2.5
		t.Errorf("rows = %d", res.Len())
	}
	res = query(t, db, "SELECT AVG(x) FROM m")
	if res.Rows[0][0].Float != 1.5 {
		t.Errorf("avg = %v", res.Rows[0][0])
	}
	// Mixed int/float comparison.
	res = query(t, db, "SELECT id FROM m WHERE x=?", sqlparse.IntVal(2))
	if res.Len() != 1 || res.Rows[0][0].Int != 4 {
		t.Errorf("int-float equality: %v", res.Rows)
	}
}

func TestOrderByMultiKeyMixedDirections(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_name, qty FROM toys ORDER BY toy_name, qty DESC")
	// bear(10), bear(7), doll(3), kite(25), truck(3)
	want := [][2]interface{}{{"bear", int64(10)}, {"bear", int64(7)}, {"doll", int64(3)}, {"kite", int64(25)}, {"truck", int64(3)}}
	for i, w := range want {
		if res.Rows[i][0].Str != w[0].(string) || res.Rows[i][1].Int != w[1].(int64) {
			t.Fatalf("row %d = %v", i, res.Rows[i])
		}
	}
}

func TestLimitZero(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_id FROM toys LIMIT 0")
	if res.Len() != 0 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestLimitBeyondRows(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_id FROM toys ORDER BY toy_id LIMIT 100")
	if res.Len() != 5 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestGroupByMultipleAggregates(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_name, MIN(qty), MAX(qty), COUNT(qty), AVG(qty) FROM toys GROUP BY toy_name ORDER BY toy_name")
	var bear []sqlparse.Value
	for _, r := range res.Rows {
		if r[0].Str == "bear" {
			bear = r
		}
	}
	if bear == nil || bear[1].Int != 7 || bear[2].Int != 10 || bear[3].Int != 2 || bear[4].Float != 8.5 {
		t.Errorf("bear = %v", bear)
	}
}

func TestCountStarVersusCountColumn(t *testing.T) {
	db := toyDB(t)
	mustInsert(t, db, "toys", storage.Row{sqlparse.IntVal(50), sqlparse.Null(), sqlparse.IntVal(1)})
	star := query(t, db, "SELECT COUNT(*) FROM toys")
	col := query(t, db, "SELECT COUNT(toy_name) FROM toys")
	if star.Rows[0][0].Int != col.Rows[0][0].Int+1 {
		t.Errorf("COUNT(*)=%v COUNT(col)=%v", star.Rows[0][0], col.Rows[0][0])
	}
}

func TestSelfJoinAliasesIndependent(t *testing.T) {
	db := toyDB(t)
	// Pairs of distinct toys with the same name.
	res := query(t, db, "SELECT t1.toy_id, t2.toy_id FROM toys AS t1, toys AS t2 WHERE t1.toy_name=t2.toy_name AND t1.toy_id<t2.toy_id")
	if res.Len() != 1 { // bear ids (1,3)
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 3 {
		t.Errorf("pair = %v", res.Rows[0])
	}
}

// TestRandomizedEngineConsistency: random small databases; for each query,
// index-assisted execution must equal brute-force nested-loop semantics
// (checked by re-running after dropping to unindexed paths via a fresh
// unindexed database with identical rows).
func TestRandomizedEngineConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	mk := func(withIndex bool) *storage.Database {
		s := schema.New()
		s.MustAddTable("r", []schema.Column{
			{Name: "id", Type: schema.TInt}, {Name: "k", Type: schema.TInt}, {Name: "v", Type: schema.TString},
		}, "id")
		db := storage.NewDatabase(s)
		if withIndex {
			if err := db.Table("r").CreateIndex("k"); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	queries := []string{
		"SELECT id FROM r WHERE k=?",
		"SELECT id, v FROM r WHERE k>=? ORDER BY id",
		"SELECT COUNT(*) FROM r WHERE k=?",
		"SELECT k, COUNT(*) FROM r GROUP BY k ORDER BY k",
		"SELECT id FROM r WHERE k=? AND v=?",
	}
	for trial := 0; trial < 50; trial++ {
		indexed, plain := mk(true), mk(false)
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			row := storage.Row{
				sqlparse.IntVal(int64(i)),
				sqlparse.IntVal(int64(rng.Intn(5))),
				sqlparse.StringVal(fmt.Sprintf("s%d", rng.Intn(3))),
			}
			mustInsert(t, indexed, "r", row)
			mustInsert(t, plain, "r", row)
		}
		for _, src := range queries {
			q := sqlparse.MustParse(src).(*sqlparse.SelectStmt)
			params := []sqlparse.Value{sqlparse.IntVal(int64(rng.Intn(5))), sqlparse.StringVal(fmt.Sprintf("s%d", rng.Intn(3)))}
			params = params[:sqlparse.NumParams(q)]
			a, err := ExecQuery(indexed, q, params)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ExecQuery(plain, q, params)
			if err != nil {
				t.Fatal(err)
			}
			ordered := len(q.OrderBy) > 0
			if a.Fingerprint(ordered) != b.Fingerprint(ordered) {
				t.Fatalf("trial %d: indexed and plain plans disagree for %q", trial, src)
			}
		}
	}
}

func TestProjectionDuplicateColumns(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT qty, qty FROM toys WHERE toy_id=?", sqlparse.IntVal(5))
	if len(res.Columns) != 2 || res.Rows[0][0].Int != 25 || res.Rows[0][1].Int != 25 {
		t.Errorf("res = %+v", res)
	}
}

func TestAliasProjection(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT qty AS amount FROM toys WHERE toy_id=?", sqlparse.IntVal(5))
	if res.Columns[0] != "amount" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.ColumnIndex("amount") != 0 || res.ColumnIndex("qty") != -1 {
		t.Error("ColumnIndex on alias broken")
	}
}
