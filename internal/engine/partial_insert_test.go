package engine

import (
	"strings"
	"testing"

	"dssp/internal/sqlparse"
)

// Partial-column insertions: columns the statement does not name become
// NULL, and the engine's NULL semantics (a NULL satisfies no predicate and
// enters no aggregate) must hold for the stored row.

func TestPartialInsertNullFill(t *testing.T) {
	db := toyDB(t)
	s := sqlparse.MustParse("INSERT INTO toys (toy_id, toy_name) VALUES (?, ?)").(*sqlparse.InsertStmt)
	params := []sqlparse.Value{sqlparse.IntVal(8), sqlparse.StringVal("glider")}
	row, err := InsertedRow(db, s, params)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 8 || row[1].Str != "glider" || !row[2].IsNull() {
		t.Fatalf("row = %v, want qty NULL", row)
	}
	if n, err := ExecUpdate(db, s, params); err != nil || n != 1 {
		t.Fatalf("ExecUpdate = %d, %v", n, err)
	}

	// The row exists...
	if res := query(t, db, "SELECT toy_id FROM toys WHERE toy_id=?", sqlparse.IntVal(8)); res.Len() != 1 {
		t.Errorf("inserted row not found: %+v", res.Rows)
	}
	// ...but its NULL qty satisfies no predicate in either direction...
	for _, src := range []string{
		"SELECT toy_id FROM toys WHERE qty<? AND toy_id=?",
		"SELECT toy_id FROM toys WHERE qty>=? AND toy_id=?",
	} {
		if res := query(t, db, src, sqlparse.IntVal(1000), sqlparse.IntVal(8)); res.Len() != 0 {
			t.Errorf("%s matched the NULL row: %+v", src, res.Rows)
		}
	}
	// ...and does not perturb aggregates over qty.
	before := query(t, db, "SELECT MAX(qty) FROM toys")
	if before.Rows[0][0].Int != 25 {
		t.Errorf("MAX(qty) = %v, want 25 (NULL must not participate)", before.Rows[0][0])
	}
}

func TestPartialInsertRequiresKey(t *testing.T) {
	db := toyDB(t)
	s := sqlparse.MustParse("INSERT INTO toys (toy_name, qty) VALUES (?, ?)").(*sqlparse.InsertStmt)
	params := []sqlparse.Value{sqlparse.StringVal("orphan"), sqlparse.IntVal(1)}
	if _, err := InsertedRow(db, s, params); err == nil || !strings.Contains(err.Error(), "key column") {
		t.Errorf("InsertedRow err = %v, want key-column error", err)
	}
	if _, err := ExecUpdate(db, s, params); err == nil {
		t.Error("ExecUpdate accepted an insert without its primary key")
	}
}
