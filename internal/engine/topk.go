package engine

import "sort"

// topK returns the k smallest elements under less, in ascending order —
// what ORDER BY … LIMIT k needs — without sorting the rest: a bounded
// max-heap of the best k candidates makes selection O(n log k) instead of
// O(n log n), and the n−k losers are never reordered or retained. The
// paper's top-k templates ("newest 10 comments", "top 50 best sellers")
// scan many base rows to keep a handful, which is exactly this shape.
//
// less must be a strict total order on row *content* (the engine's
// comparators tie-break on the full row), so elements that compare equal
// are identical and the selection is deterministic: the result is
// byte-for-byte the prefix a stable full sort would have produced.
func topK[T any](items []T, k int, less func(a, b T) bool) []T {
	if k <= 0 {
		return nil
	}
	if k >= len(items) {
		sort.SliceStable(items, func(a, b int) bool { return less(items[a], items[b]) })
		return items
	}
	h := items[:k:k]
	for i := k / 2; i >= 0; i-- {
		siftDown(h, i, less)
	}
	for _, it := range items[k:] {
		if less(it, h[0]) {
			h[0] = it
			siftDown(h, 0, less)
		}
	}
	// Heap-sort the survivors ascending: repeatedly swap the current
	// maximum to the end of the shrinking heap.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end], 0, less)
	}
	return h
}

// siftDown restores the max-heap property at index i of h.
func siftDown[T any](h []T, i int, less func(a, b T) bool) {
	for {
		big := i
		if l := 2*i + 1; l < len(h) && less(h[big], h[l]) {
			big = l
		}
		if r := 2*i + 2; r < len(h) && less(h[big], h[r]) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}
