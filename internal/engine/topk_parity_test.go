package engine_test

import (
	"math/rand"
	"testing"

	"dssp/internal/apps"
	"dssp/internal/engine"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
	"dssp/internal/workload"
)

// The bounded top-k selection must be observably identical to the full
// sort it replaced: for every ORDER BY … LIMIT template of the three
// benchmark applications, executing the template must yield exactly the
// rows of an unlimited execution truncated to the limit — including how
// duplicate order keys resolve, which the canonical full-content
// tie-break pins down. Parameters come from real session replays, so the
// queries run against the value distributions the benchmarks actually
// produce (duplicate dates, shared categories, and so on).
func TestTopKParityWithFullSort(t *testing.T) {
	for _, b := range []workload.Benchmark{apps.NewAuction(), apps.NewBBoard(), apps.NewBookstore()} {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			app := b.App()
			rng := rand.New(rand.NewSource(1))
			db := storage.NewDatabase(app.Schema)
			if err := b.Populate(db, rng); err != nil {
				t.Fatal(err)
			}

			topk := map[string]bool{}
			for _, q := range app.Queries {
				if sel, ok := q.Stmt.(*sqlparse.SelectStmt); ok && sel.Limit >= 0 && len(sel.OrderBy) > 0 {
					topk[q.ID] = true
				}
			}
			if len(topk) == 0 {
				t.Fatalf("%s has no ORDER BY … LIMIT templates", b.Name())
			}

			exercised := map[string]int{}
			sess := b.NewSession(rng)
			for page := 0; page < 400; page++ {
				for _, op := range sess.NextPage() {
					if !topk[op.Template.ID] {
						continue
					}
					sel := op.Template.Stmt.(*sqlparse.SelectStmt)
					got, err := engine.ExecQuery(db, sel, op.Params)
					if err != nil {
						t.Fatalf("%s%v: %v", op.Template.ID, op.Params, err)
					}
					unlimited := *sel
					unlimited.Limit = -1
					want, err := engine.ExecQuery(db, &unlimited, op.Params)
					if err != nil {
						t.Fatalf("%s%v unlimited: %v", op.Template.ID, op.Params, err)
					}
					if len(want.Rows) > sel.Limit {
						want.Rows = want.Rows[:sel.Limit]
					}
					if got.Len() > sel.Limit {
						t.Fatalf("%s%v: %d rows exceed LIMIT %d", op.Template.ID, op.Params, got.Len(), sel.Limit)
					}
					if got.Fingerprint(true) != want.Fingerprint(true) {
						t.Fatalf("%s%v: top-k selection diverges from full sort + truncate\n got: %v\nwant: %v",
							op.Template.ID, op.Params, got.Rows, want.Rows)
					}
					exercised[op.Template.ID]++
				}
			}
			for id := range topk {
				if exercised[id] == 0 {
					t.Errorf("template %s never exercised by 400 session pages", id)
				}
			}
		})
	}
}
