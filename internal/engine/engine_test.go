package engine

import (
	"fmt"
	"testing"

	"dssp/internal/schema"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
)

// toyDB builds the paper's toystore database (Table 3) with sample data.
func toyDB(t testing.TB) *storage.Database {
	t.Helper()
	s := schema.New()
	s.MustAddTable("toys", []schema.Column{
		{Name: "toy_id", Type: schema.TInt},
		{Name: "toy_name", Type: schema.TString},
		{Name: "qty", Type: schema.TInt},
	}, "toy_id")
	s.MustAddTable("customers", []schema.Column{
		{Name: "cust_id", Type: schema.TInt},
		{Name: "cust_name", Type: schema.TString},
	}, "cust_id")
	s.MustAddTable("credit_card", []schema.Column{
		{Name: "cid", Type: schema.TInt},
		{Name: "number", Type: schema.TString},
		{Name: "zip_code", Type: schema.TString},
	}, "cid")
	s.MustAddForeignKey("credit_card", "cid", "customers", "cust_id")
	db := storage.NewDatabase(s)
	toys := []struct {
		id   int64
		name string
		qty  int64
	}{
		{1, "bear", 10}, {2, "truck", 3}, {3, "bear", 7}, {4, "doll", 3}, {5, "kite", 25},
	}
	for _, x := range toys {
		mustInsert(t, db, "toys", storage.Row{sqlparse.IntVal(x.id), sqlparse.StringVal(x.name), sqlparse.IntVal(x.qty)})
	}
	for i := int64(1); i <= 3; i++ {
		mustInsert(t, db, "customers", storage.Row{sqlparse.IntVal(i), sqlparse.StringVal(fmt.Sprintf("cust%d", i))})
		mustInsert(t, db, "credit_card", storage.Row{
			sqlparse.IntVal(i), sqlparse.StringVal(fmt.Sprintf("4111-%d", i)), sqlparse.StringVal(fmt.Sprintf("152%02d", i)),
		})
	}
	return db
}

func mustInsert(t testing.TB, db *storage.Database, table string, r storage.Row) {
	t.Helper()
	if err := db.Insert(table, r); err != nil {
		t.Fatal(err)
	}
}

func query(t testing.TB, db *storage.Database, src string, params ...sqlparse.Value) *Result {
	t.Helper()
	q := sqlparse.MustParse(src).(*sqlparse.SelectStmt)
	res, err := ExecQuery(db, q, params)
	if err != nil {
		t.Fatalf("ExecQuery(%q): %v", src, err)
	}
	return res
}

func update(t testing.TB, db *storage.Database, src string, params ...sqlparse.Value) int {
	t.Helper()
	n, err := ExecUpdate(db, sqlparse.MustParse(src), params)
	if err != nil {
		t.Fatalf("ExecUpdate(%q): %v", src, err)
	}
	return n
}

func TestSelectEqualityParam(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_id FROM toys WHERE toy_name=?", sqlparse.StringVal("bear"))
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
	ids := map[int64]bool{}
	for _, r := range res.Rows {
		ids[r[0].Int] = true
	}
	if !ids[1] || !ids[3] {
		t.Errorf("ids = %v", ids)
	}
}

func TestSelectByPrimaryKeyUsesIndex(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT qty FROM toys WHERE toy_id=?", sqlparse.IntVal(5))
	if res.Len() != 1 || res.Rows[0][0].Int != 25 {
		t.Fatalf("res = %+v", res.Rows)
	}
	if res.RowsScanned != 1 {
		t.Errorf("RowsScanned = %d, want 1 (PK path)", res.RowsScanned)
	}
}

func TestSelectStar(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT * FROM toys WHERE toy_id=?", sqlparse.IntVal(2))
	if len(res.Columns) != 3 || res.Columns[1] != "toy_name" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].Str != "truck" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestSelectInequality(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_id FROM toys WHERE qty>?", sqlparse.IntVal(5))
	if res.Len() != 3 { // 10, 7, 25
		t.Errorf("rows = %d, want 3", res.Len())
	}
}

func TestEquiJoinWithForeignKey(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT cust_name FROM customers, credit_card WHERE cust_id=cid AND zip_code=?",
		sqlparse.StringVal("15202"))
	if res.Len() != 1 || res.Rows[0][0].Str != "cust2" {
		t.Fatalf("res = %+v", res.Rows)
	}
}

func TestSelfJoinInequality(t *testing.T) {
	// The paper's §4.4 example query (a): self-join comparing quantities.
	db := toyDB(t)
	res := query(t, db,
		"SELECT t1.toy_id, t1.qty, t2.toy_id, t2.qty FROM toys AS t1, toys AS t2 WHERE t1.toy_name=? AND t2.toy_name=? AND t1.qty>t2.qty",
		sqlparse.StringVal("bear"), sqlparse.StringVal("truck"))
	if res.Len() != 2 { // (1,10)>(2,3) and (3,7)>(2,3)
		t.Fatalf("rows = %d, want 2: %+v", res.Len(), res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_id, qty FROM toys ORDER BY qty DESC, toy_id LIMIT 3")
	want := []int64{5, 1, 3}
	for i, r := range res.Rows {
		if r[0].Int != want[i] {
			t.Errorf("row %d = %v, want toy %d", i, r, want[i])
		}
	}
}

func TestOrderByAscStableTies(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_id FROM toys ORDER BY qty")
	// qty: 3(truck,id2) 3(doll,id4) 7 10 25; ties keep insertion order.
	want := []int64{2, 4, 3, 1, 5}
	for i, r := range res.Rows {
		if r[0].Int != want[i] {
			t.Fatalf("order = %v", res.Rows)
		}
	}
}

func TestAggregateMax(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT MAX(qty) FROM toys")
	if res.Len() != 1 || res.Rows[0][0].Int != 25 {
		t.Fatalf("res = %+v", res.Rows)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT MAX(qty) FROM toys WHERE toy_name=?", sqlparse.StringVal("nosuch"))
	if res.Len() != 1 || !res.Rows[0][0].IsNull() {
		t.Fatalf("MAX over empty = %+v", res.Rows)
	}
	res = query(t, db, "SELECT COUNT(*) FROM toys WHERE toy_name=?", sqlparse.StringVal("nosuch"))
	if res.Rows[0][0].Int != 0 {
		t.Fatalf("COUNT over empty = %+v", res.Rows)
	}
}

func TestGroupBy(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_name, SUM(qty) AS total, COUNT(*) AS n FROM toys GROUP BY toy_name ORDER BY total DESC")
	if res.Len() != 4 {
		t.Fatalf("groups = %d: %+v", res.Len(), res.Rows)
	}
	if res.Rows[0][0].Str != "kite" || res.Rows[0][1].Int != 25 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	// bear: 10+7=17, 2 rows
	var bear []sqlparse.Value
	for _, r := range res.Rows {
		if r[0].Str == "bear" {
			bear = r
		}
	}
	if bear == nil || bear[1].Int != 17 || bear[2].Int != 2 {
		t.Errorf("bear group = %v", bear)
	}
}

func TestGroupByTopK(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT toy_name, SUM(qty) AS total FROM toys GROUP BY toy_name ORDER BY total DESC LIMIT 2")
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Rows[0][0].Str != "kite" || res.Rows[1][0].Str != "bear" {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestAvgAndSumFloat(t *testing.T) {
	db := toyDB(t)
	res := query(t, db, "SELECT AVG(qty) FROM toys")
	want := (10.0 + 3 + 7 + 3 + 25) / 5
	if res.Rows[0][0].Float != want {
		t.Errorf("avg = %v, want %v", res.Rows[0][0], want)
	}
	res = query(t, db, "SELECT SUM(qty) FROM toys")
	if res.Rows[0][0].Kind != sqlparse.KindInt || res.Rows[0][0].Int != 48 {
		t.Errorf("sum = %v", res.Rows[0][0])
	}
}

func TestNonAggregatedColumnOutsideGroupByRejected(t *testing.T) {
	db := toyDB(t)
	q := sqlparse.MustParse("SELECT toy_id, SUM(qty) FROM toys GROUP BY toy_name").(*sqlparse.SelectStmt)
	if _, err := ExecQuery(db, q, nil); err == nil {
		t.Error("non-grouped column accepted")
	}
}

func TestInsertExec(t *testing.T) {
	db := toyDB(t)
	n := update(t, db, "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
		sqlparse.IntVal(6), sqlparse.StringVal("ball"), sqlparse.IntVal(4))
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	res := query(t, db, "SELECT qty FROM toys WHERE toy_id=?", sqlparse.IntVal(6))
	if res.Len() != 1 || res.Rows[0][0].Int != 4 {
		t.Errorf("res = %+v", res.Rows)
	}
}

func TestInsertColumnOrderIndependent(t *testing.T) {
	db := toyDB(t)
	update(t, db, "INSERT INTO toys (qty, toy_id, toy_name) VALUES (?, ?, ?)",
		sqlparse.IntVal(4), sqlparse.IntVal(7), sqlparse.StringVal("ball"))
	res := query(t, db, "SELECT qty FROM toys WHERE toy_id=?", sqlparse.IntVal(7))
	if res.Len() != 1 || res.Rows[0][0].Int != 4 {
		t.Errorf("res = %+v", res.Rows)
	}
}

func TestDeleteExec(t *testing.T) {
	db := toyDB(t)
	n := update(t, db, "DELETE FROM toys WHERE toy_id=?", sqlparse.IntVal(5))
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if res := query(t, db, "SELECT toy_id FROM toys WHERE toy_id=?", sqlparse.IntVal(5)); res.Len() != 0 {
		t.Error("row not deleted")
	}
}

func TestDeleteByPredicate(t *testing.T) {
	db := toyDB(t)
	n := update(t, db, "DELETE FROM toys WHERE qty<?", sqlparse.IntVal(5))
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestModifyExec(t *testing.T) {
	db := toyDB(t)
	n := update(t, db, "UPDATE toys SET qty=? WHERE toy_id=?", sqlparse.IntVal(100), sqlparse.IntVal(2))
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	res := query(t, db, "SELECT qty FROM toys WHERE toy_id=?", sqlparse.IntVal(2))
	if res.Rows[0][0].Int != 100 {
		t.Errorf("qty = %v", res.Rows[0][0])
	}
	// Modifying a missing row affects nothing.
	if n := update(t, db, "UPDATE toys SET qty=? WHERE toy_id=?", sqlparse.IntVal(1), sqlparse.IntVal(404)); n != 0 {
		t.Errorf("n = %d, want 0", n)
	}
}

func TestInsertedRow(t *testing.T) {
	db := toyDB(t)
	s := sqlparse.MustParse("INSERT INTO toys (qty, toy_id, toy_name) VALUES (?, ?, ?)").(*sqlparse.InsertStmt)
	row, err := InsertedRow(db, s, []sqlparse.Value{sqlparse.IntVal(4), sqlparse.IntVal(9), sqlparse.StringVal("x")})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 9 || row[1].Str != "x" || row[2].Int != 4 {
		t.Errorf("row = %v", row)
	}
}

func TestRowMatches(t *testing.T) {
	db := toyDB(t)
	where := sqlparse.MustParse("DELETE FROM toys WHERE qty>?").(*sqlparse.DeleteStmt).Where
	row := storage.Row{sqlparse.IntVal(1), sqlparse.StringVal("a"), sqlparse.IntVal(10)}
	ok, err := RowMatches(db, "toys", where, []sqlparse.Value{sqlparse.IntVal(5)}, row)
	if err != nil || !ok {
		t.Errorf("RowMatches = %v, %v", ok, err)
	}
	ok, _ = RowMatches(db, "toys", where, []sqlparse.Value{sqlparse.IntVal(50)}, row)
	if ok {
		t.Error("RowMatches should be false")
	}
}

func TestMissingParamError(t *testing.T) {
	db := toyDB(t)
	q := sqlparse.MustParse("SELECT toy_id FROM toys WHERE toy_name=?").(*sqlparse.SelectStmt)
	if _, err := ExecQuery(db, q, nil); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	db := toyDB(t)
	mustInsert(t, db, "toys", storage.Row{sqlparse.IntVal(99), sqlparse.Null(), sqlparse.IntVal(1)})
	res := query(t, db, "SELECT toy_id FROM toys WHERE toy_name=?", sqlparse.StringVal("bear"))
	for _, r := range res.Rows {
		if r[0].Int == 99 {
			t.Error("NULL name matched equality")
		}
	}
}

func TestFingerprintMultisetSemantics(t *testing.T) {
	a := &Result{Rows: [][]sqlparse.Value{{sqlparse.IntVal(1)}, {sqlparse.IntVal(2)}}}
	b := &Result{Rows: [][]sqlparse.Value{{sqlparse.IntVal(2)}, {sqlparse.IntVal(1)}}}
	if a.Fingerprint(false) != b.Fingerprint(false) {
		t.Error("unordered fingerprints differ")
	}
	if a.Fingerprint(true) == b.Fingerprint(true) {
		t.Error("ordered fingerprints should differ")
	}
	c := &Result{Rows: [][]sqlparse.Value{{sqlparse.IntVal(1)}, {sqlparse.IntVal(1)}, {sqlparse.IntVal(2)}}}
	if a.Fingerprint(false) == c.Fingerprint(false) {
		t.Error("duplicate row counts must matter (multiset)")
	}
}

func TestSecondaryIndexPathMatchesScan(t *testing.T) {
	db := toyDB(t)
	noIdx := query(t, db, "SELECT toy_id FROM toys WHERE toy_name=?", sqlparse.StringVal("bear"))
	if err := db.Table("toys").CreateIndex("toy_name"); err != nil {
		t.Fatal(err)
	}
	withIdx := query(t, db, "SELECT toy_id FROM toys WHERE toy_name=?", sqlparse.StringVal("bear"))
	if noIdx.Fingerprint(false) != withIdx.Fingerprint(false) {
		t.Error("index path changed the result")
	}
	if withIdx.RowsScanned >= noIdx.RowsScanned {
		t.Errorf("index did not reduce scanned rows: %d vs %d", withIdx.RowsScanned, noIdx.RowsScanned)
	}
}

func TestJoinIndexNestedLoop(t *testing.T) {
	db := toyDB(t)
	// cust_id is the PK of customers, so the join should use the PK path for
	// whichever side binds second.
	res := query(t, db, "SELECT cust_name, number FROM credit_card, customers WHERE cid=cust_id")
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.RowsScanned > 6 {
		t.Errorf("RowsScanned = %d; PK join path not used", res.RowsScanned)
	}
}
