// Package sqlparse implements a lexer and parser for the SQL subset used by
// the paper "Simultaneous Scalability and Security for Data-Intensive Web
// Applications" (SIGMOD 2006): select-project-join queries with conjunctive
// arithmetic selection predicates, optional ORDER BY, TOP-k (LIMIT),
// aggregation and GROUP BY, plus three kinds of updates (insertions,
// deletions, and modifications). Statements may contain `?` placeholders
// that are bound to parameter values at execution time, forming the
// query/update *templates* of a Web application.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates the dynamic type of a Value.
type ValueKind uint8

// The value kinds supported by the SQL subset.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Str   string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// IntVal returns an integer Value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatVal returns a floating-point Value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// StringVal returns a string Value.
func StringVal(v string) Value { return Value{Kind: KindString, Str: v} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts a numeric Value to float64. It panics for non-numeric
// kinds; callers must check Kind first.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int)
	case KindFloat:
		return v.Float
	default:
		panic("sqlparse: AsFloat on non-numeric value " + v.Kind.String())
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float; strings compare lexicographically.
// Comparing a string with a number orders the number first (a total order is
// required for sorting; mixed-kind comparisons never arise in well-typed
// workloads).
func (v Value) Compare(o Value) int {
	vn, on := v.Kind == KindInt || v.Kind == KindFloat, o.Kind == KindInt || o.Kind == KindFloat
	switch {
	case v.Kind == KindNull && o.Kind == KindNull:
		return 0
	case v.Kind == KindNull:
		return -1
	case o.Kind == KindNull:
		return 1
	case vn && on:
		if v.Kind == KindInt && o.Kind == KindInt {
			switch {
			case v.Int < o.Int:
				return -1
			case v.Int > o.Int:
				return 1
			default:
				return 0
			}
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case vn:
		return -1
	case on:
		return 1
	default:
		return strings.Compare(v.Str, o.Str)
	}
}

// Equal reports whether two values compare equal.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.Kind)
	}
}
