package sqlparse

import (
	"fmt"
	"strings"
)

// Statement is a parsed SQL statement: one of *SelectStmt, *InsertStmt,
// *DeleteStmt, or *UpdateStmt.
type Statement interface {
	fmt.Stringer
	stmtNode()
}

// ColumnRef names a column, optionally qualified by a table name or alias.
type ColumnRef struct {
	Table  string // table name or alias; empty if unqualified
	Column string
}

func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// OperandKind discriminates the three operand forms of the subset grammar.
type OperandKind uint8

// Operand kinds.
const (
	OpColumn OperandKind = iota // a column reference
	OpParam                     // a `?` placeholder bound at execution time
	OpConst                     // a literal constant embedded in the template
)

// Operand is one side of a comparison predicate, an inserted value, or the
// right-hand side of a SET assignment.
type Operand struct {
	Kind  OperandKind
	Col   ColumnRef // valid when Kind == OpColumn
	Param int       // 0-based parameter ordinal, valid when Kind == OpParam
	Const Value     // valid when Kind == OpConst
}

func (o Operand) String() string {
	switch o.Kind {
	case OpColumn:
		return o.Col.String()
	case OpParam:
		return "?"
	case OpConst:
		return o.Const.String()
	default:
		return fmt.Sprintf("Operand(kind=%d)", o.Kind)
	}
}

// CompareOp is one of the five comparison operators permitted by the paper's
// query model ({<, <=, >, >=, =}).
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Flip returns the operator with its operand order reversed
// (e.g. a < b  ⟺  b > a).
func (op CompareOp) Flip() CompareOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// Holds reports whether `cmp op 0` holds, where cmp is a three-way
// comparison result as returned by Value.Compare.
func (op CompareOp) Holds(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// Predicate is a single conjunct of a WHERE clause: `Left Op Right`.
type Predicate struct {
	Left  Operand
	Op    CompareOp
	Right Operand
}

func (p Predicate) String() string {
	return p.Left.String() + p.Op.String() + p.Right.String()
}

// IsJoin reports whether the predicate compares two columns (a join or
// cross-attribute condition) rather than a column against a constant or
// parameter.
func (p Predicate) IsJoin() bool {
	return p.Left.Kind == OpColumn && p.Right.Kind == OpColumn
}

// AggFunc identifies an aggregation function applied in a select expression.
type AggFunc uint8

// Aggregation functions of the subset (AggNone means a plain column).
const (
	AggNone AggFunc = iota
	AggMin
	AggMax
	AggCount
	AggSum
	AggAvg
)

func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(a))
	}
}

// SelectExpr is one projection item: `*`, `col`, `agg(col)`, or `COUNT(*)`.
type SelectExpr struct {
	Agg   AggFunc
	Star  bool      // `*` (alone, or inside COUNT(*))
	Col   ColumnRef // valid when !Star
	Alias string    // optional `AS alias`
}

func (e SelectExpr) String() string {
	var b strings.Builder
	inner := "*"
	if !e.Star {
		inner = e.Col.String()
	}
	if e.Agg != AggNone {
		b.WriteString(e.Agg.String())
		b.WriteByte('(')
		b.WriteString(inner)
		b.WriteByte(')')
	} else {
		b.WriteString(inner)
	}
	if e.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(e.Alias)
	}
	return b.String()
}

// TableRef names a relation in a FROM clause, with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Table
	}
	return t.Table + " AS " + t.Alias
}

// Name returns the name by which columns reference this table: the alias if
// present, otherwise the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  ColumnRef
	Desc bool
}

func (k OrderKey) String() string {
	if k.Desc {
		return k.Col.String() + " DESC"
	}
	return k.Col.String()
}

// SelectStmt is a select-project-join query with conjunctive predicates,
// optional GROUP BY, ORDER BY, and top-k (LIMIT).
type SelectStmt struct {
	Select  []SelectExpr
	From    []TableRef
	Where   []Predicate
	GroupBy []ColumnRef
	OrderBy []OrderKey
	Limit   int // -1 when absent
}

func (*SelectStmt) stmtNode() {}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, e := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	writeWhere(&b, s.Where)
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// HasAggregate reports whether any projection applies an aggregation
// function.
func (s *SelectStmt) HasAggregate() bool {
	for _, e := range s.Select {
		if e.Agg != AggNone {
			return true
		}
	}
	return false
}

// InsertStmt fully specifies a row of values to be added to a relation.
type InsertStmt struct {
	Table   string
	Columns []string
	Values  []Operand // parameters or constants only
}

func (*InsertStmt) stmtNode() {}

func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	b.WriteString(" (")
	b.WriteString(strings.Join(s.Columns, ", "))
	b.WriteString(") VALUES (")
	for i, v := range s.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")")
	return b.String()
}

// DeleteStmt deletes the rows of a relation satisfying an arithmetic
// predicate.
type DeleteStmt struct {
	Table string
	Where []Predicate
}

func (*DeleteStmt) stmtNode() {}

func (s *DeleteStmt) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	writeWhere(&b, s.Where)
	return b.String()
}

// Assignment is one `column = operand` item of an UPDATE SET clause.
type Assignment struct {
	Column string
	Value  Operand
}

func (a Assignment) String() string { return a.Column + "=" + a.Value.String() }

// UpdateStmt modifies non-key attributes of the rows satisfying an equality
// predicate over the primary key of the relation.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

func (*UpdateStmt) stmtNode() {}

func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	writeWhere(&b, s.Where)
	return b.String()
}

func writeWhere(b *strings.Builder, where []Predicate) {
	if len(where) == 0 {
		return
	}
	b.WriteString(" WHERE ")
	for i, p := range where {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
}

// NumParams returns the number of `?` placeholders in the statement.
func NumParams(stmt Statement) int {
	n := 0
	walkOperands(stmt, func(o Operand) {
		if o.Kind == OpParam {
			n++
		}
	})
	return n
}

// HasEmbeddedConstant reports whether the statement embeds a literal
// constant in a comparison predicate or SET/VALUES position. Templates with
// embedded constants violate the paper's §2.1.1 simplifying assumptions and
// receive the conservative no-encryption treatment.
func HasEmbeddedConstant(stmt Statement) bool {
	found := false
	walkOperands(stmt, func(o Operand) {
		if o.Kind == OpConst {
			found = true
		}
	})
	return found
}

func walkOperands(stmt Statement, f func(Operand)) {
	walkPreds := func(where []Predicate) {
		for _, p := range where {
			f(p.Left)
			f(p.Right)
		}
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		walkPreds(s.Where)
	case *InsertStmt:
		for _, v := range s.Values {
			f(v)
		}
	case *DeleteStmt:
		walkPreds(s.Where)
	case *UpdateStmt:
		for _, a := range s.Set {
			f(a.Value)
		}
		walkPreds(s.Where)
	}
}
