package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a statement of the subset grammar:
//
//	SELECT exprs FROM tables [WHERE conj] [GROUP BY cols] [ORDER BY keys] [LIMIT k]
//	INSERT INTO table (cols) VALUES (operands)
//	DELETE FROM table [WHERE conj]
//	UPDATE table SET assignments WHERE conj
//
// Keywords are case-insensitive; `?` placeholders are numbered left to
// right starting at zero.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting at %s", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse for statically known statements; it panics on error.
// It is intended for package-level template tables in application
// definitions and tests.
func MustParse(src string) Statement {
	stmt, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return stmt
}

type parser struct {
	toks      []token
	pos       int
	src       string
	numParams int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (in %q)", fmt.Sprintf(format, args...), p.src)
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, p.errorf("expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.keyword("SELECT"):
		return p.parseSelect()
	case p.keyword("INSERT"):
		return p.parseInsert()
	case p.keyword("DELETE"):
		return p.parseDelete()
	case p.keyword("UPDATE"):
		return p.parseUpdate()
	default:
		return nil, p.errorf("expected SELECT, INSERT, DELETE, or UPDATE, got %s", p.peek())
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	s := &SelectStmt{Limit: -1}
	for {
		e, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		s.Select = append(s.Select, e)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent, "table name")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: t.text}
		if p.keyword("AS") {
			a, err := p.expect(tokIdent, "table alias")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.text
		} else if p.peek().kind == tokIdent && !isClauseKeyword(p.peek().text) {
			ref.Alias = p.next().text
		}
		s.From = append(s.From, ref)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	var err error
	if s.Where, err = p.parseOptionalWhere(); err != nil {
		return nil, err
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Col: c}
			if p.keyword("DESC") {
				k.Desc = true
			} else {
				p.keyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, k)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.keyword("LIMIT") {
		t, err := p.expect(tokNumber, "LIMIT count")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT count %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectExpr() (SelectExpr, error) {
	if p.peek().kind == tokStar {
		p.next()
		return SelectExpr{Star: true}, nil
	}
	t := p.peek()
	if t.kind == tokIdent {
		if agg := aggFuncByName(t.text); agg != AggNone && p.toks[p.pos+1].kind == tokLParen {
			p.pos += 2 // consume name and '('
			e := SelectExpr{Agg: agg}
			if p.peek().kind == tokStar {
				p.next()
				e.Star = true
			} else {
				c, err := p.parseColumnRef()
				if err != nil {
					return SelectExpr{}, err
				}
				e.Col = c
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return SelectExpr{}, err
			}
			if e.Star && agg != AggCount {
				return SelectExpr{}, p.errorf("%s(*) is not valid; only COUNT(*) may aggregate over *", agg)
			}
			return p.parseAlias(e)
		}
	}
	c, err := p.parseColumnRef()
	if err != nil {
		return SelectExpr{}, err
	}
	return p.parseAlias(SelectExpr{Col: c})
}

func (p *parser) parseAlias(e SelectExpr) (SelectExpr, error) {
	if p.keyword("AS") {
		a, err := p.expect(tokIdent, "column alias")
		if err != nil {
			return SelectExpr{}, err
		}
		e.Alias = a.text
	}
	return e, nil
}

func aggFuncByName(name string) AggFunc {
	switch strings.ToUpper(name) {
	case "MIN":
		return AggMin
	case "MAX":
		return AggMax
	case "COUNT":
		return AggCount
	case "SUM":
		return AggSum
	case "AVG":
		return AggAvg
	default:
		return AggNone
	}
}

func isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "GROUP", "ORDER", "LIMIT", "AS", "SET", "VALUES":
		return true
	default:
		return false
	}
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t, err := p.expect(tokIdent, "column name")
	if err != nil {
		return ColumnRef{}, err
	}
	if p.peek().kind == tokDot {
		p.next()
		c, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: t.text, Column: c.text}, nil
	}
	return ColumnRef{Column: t.text}, nil
}

func (p *parser) parseOptionalWhere() ([]Predicate, error) {
	if !p.keyword("WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		pr, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		if !p.keyword("AND") {
			break
		}
	}
	return preds, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseOperand()
	if err != nil {
		return Predicate{}, err
	}
	t, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Predicate{}, err
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEq
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Predicate{}, p.errorf("unsupported operator %q", t.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokParam:
		p.next()
		o := Operand{Kind: OpParam, Param: p.numParams}
		p.numParams++
		return o, nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Operand{}, p.errorf("invalid number %q", t.text)
			}
			return Operand{Kind: OpConst, Const: FloatVal(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, p.errorf("invalid number %q", t.text)
		}
		return Operand{Kind: OpConst, Const: IntVal(n)}, nil
	case tokString:
		p.next()
		return Operand{Kind: OpConst, Const: StringVal(t.text)}, nil
	case tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.next()
			return Operand{Kind: OpConst, Const: Null()}, nil
		}
		c, err := p.parseColumnRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpColumn, Col: c}, nil
	default:
		return Operand{}, p.errorf("expected operand, got %s", t)
	}
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: t.text}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tokIdent, "column name")
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, c.text)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	for {
		o, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if o.Kind == OpColumn {
			return nil, p.errorf("column reference %s is not a valid inserted value", o.Col)
		}
		s.Values = append(s.Values, o)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if len(s.Columns) != len(s.Values) {
		return nil, p.errorf("INSERT has %d columns but %d values", len(s.Columns), len(s.Values))
	}
	for i, c := range s.Columns {
		for _, prev := range s.Columns[:i] {
			if c == prev {
				return nil, p.errorf("INSERT names column %q twice", c)
			}
		}
	}
	return s, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	where, err := p.parseOptionalWhere()
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Table: t.text, Where: where}, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	t, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: t.text}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(tokIdent, "column name")
		if err != nil {
			return nil, err
		}
		op, err := p.expect(tokOp, "=")
		if err != nil {
			return nil, err
		}
		if op.text != "=" {
			return nil, p.errorf("expected = in SET clause, got %q", op.text)
		}
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if v.Kind == OpColumn {
			return nil, p.errorf("column reference %s is not a valid SET value", v.Col)
		}
		s.Set = append(s.Set, Assignment{Column: c.text, Value: v})
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if s.Where, err = p.parseOptionalWhere(); err != nil {
		return nil, err
	}
	if len(s.Where) == 0 {
		return nil, p.errorf("UPDATE requires a WHERE clause over the primary key")
	}
	return s, nil
}
