package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSelectBasic(t *testing.T) {
	stmt, err := Parse("SELECT toy_id FROM toys WHERE toy_name=?")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T, want *SelectStmt", stmt)
	}
	if len(s.Select) != 1 || s.Select[0].Col.Column != "toy_id" {
		t.Errorf("bad projection: %+v", s.Select)
	}
	if len(s.From) != 1 || s.From[0].Table != "toys" {
		t.Errorf("bad FROM: %+v", s.From)
	}
	if len(s.Where) != 1 {
		t.Fatalf("bad WHERE: %+v", s.Where)
	}
	p := s.Where[0]
	if p.Left.Kind != OpColumn || p.Left.Col.Column != "toy_name" {
		t.Errorf("bad left operand: %+v", p.Left)
	}
	if p.Op != OpEq {
		t.Errorf("bad op: %v", p.Op)
	}
	if p.Right.Kind != OpParam || p.Right.Param != 0 {
		t.Errorf("bad right operand: %+v", p.Right)
	}
	if s.Limit != -1 {
		t.Errorf("limit = %d, want -1", s.Limit)
	}
}

func TestParseSelectJoinAliases(t *testing.T) {
	stmt := MustParse("SELECT t1.toy_id, t2.qty FROM toys AS t1, toys t2 WHERE t1.qty > t2.qty AND t1.toy_name = ?")
	s := stmt.(*SelectStmt)
	if len(s.From) != 2 {
		t.Fatalf("FROM size %d, want 2", len(s.From))
	}
	if s.From[0].Alias != "t1" || s.From[1].Alias != "t2" {
		t.Errorf("aliases: %+v", s.From)
	}
	if len(s.Where) != 2 {
		t.Fatalf("WHERE size %d", len(s.Where))
	}
	if !s.Where[0].IsJoin() {
		t.Errorf("pred 0 should be a join: %v", s.Where[0])
	}
	if s.Where[1].IsJoin() {
		t.Errorf("pred 1 should not be a join: %v", s.Where[1])
	}
	if s.Where[0].Op != OpGt {
		t.Errorf("op = %v, want >", s.Where[0].Op)
	}
}

func TestParseSelectOrderLimit(t *testing.T) {
	s := MustParse("SELECT a, b FROM t WHERE a >= ? ORDER BY b DESC, a ASC LIMIT 10").(*SelectStmt)
	if len(s.OrderBy) != 2 {
		t.Fatalf("OrderBy: %+v", s.OrderBy)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("DESC flags wrong: %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
	if s.Where[0].Op != OpGe {
		t.Errorf("op = %v, want >=", s.Where[0].Op)
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("SELECT i_id, SUM(qty) AS total, COUNT(*) FROM order_line GROUP BY i_id ORDER BY total DESC LIMIT 50").(*SelectStmt)
	if !s.HasAggregate() {
		t.Fatal("HasAggregate = false")
	}
	if s.Select[1].Agg != AggSum || s.Select[1].Alias != "total" {
		t.Errorf("sum expr: %+v", s.Select[1])
	}
	if s.Select[2].Agg != AggCount || !s.Select[2].Star {
		t.Errorf("count expr: %+v", s.Select[2])
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].Column != "i_id" {
		t.Errorf("group by: %+v", s.GroupBy)
	}
}

func TestParseMinMaxAvg(t *testing.T) {
	s := MustParse("SELECT MIN(a), MAX(b), AVG(c) FROM t").(*SelectStmt)
	want := []AggFunc{AggMin, AggMax, AggAvg}
	for i, e := range s.Select {
		if e.Agg != want[i] {
			t.Errorf("expr %d agg = %v, want %v", i, e.Agg, want[i])
		}
	}
}

func TestParseStarNotCountRejected(t *testing.T) {
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) should be rejected")
	}
}

func TestParseInsert(t *testing.T) {
	s := MustParse("INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)").(*InsertStmt)
	if s.Table != "credit_card" {
		t.Errorf("table = %q", s.Table)
	}
	if len(s.Columns) != 3 || len(s.Values) != 3 {
		t.Fatalf("cols/vals: %v %v", s.Columns, s.Values)
	}
	for i, v := range s.Values {
		if v.Kind != OpParam || v.Param != i {
			t.Errorf("value %d = %+v", i, v)
		}
	}
}

func TestParseInsertWithConstants(t *testing.T) {
	s := MustParse("INSERT INTO toys (toy_id, toy_name, qty) VALUES (15, 'toyb', 10)").(*InsertStmt)
	if s.Values[0].Const.Int != 15 {
		t.Errorf("value 0 = %v", s.Values[0])
	}
	if s.Values[1].Const.Str != "toyb" {
		t.Errorf("value 1 = %v", s.Values[1])
	}
	if !HasEmbeddedConstant(s) {
		t.Error("HasEmbeddedConstant = false")
	}
}

func TestParseInsertArityMismatch(t *testing.T) {
	if _, err := Parse("INSERT INTO t (a, b) VALUES (?)"); err == nil {
		t.Error("arity mismatch should be rejected")
	}
	if _, err := Parse("INSERT INTO t (a) VALUES (?, ?)"); err == nil {
		t.Error("arity mismatch should be rejected")
	}
}

func TestParseInsertDuplicateColumn(t *testing.T) {
	if _, err := Parse("INSERT INTO t (a, b, a) VALUES (?, ?, ?)"); err == nil {
		t.Error("duplicate column should be rejected")
	}
}

func TestParseDelete(t *testing.T) {
	s := MustParse("DELETE FROM toys WHERE toy_id=?").(*DeleteStmt)
	if s.Table != "toys" || len(s.Where) != 1 {
		t.Errorf("%+v", s)
	}
}

func TestParseUpdate(t *testing.T) {
	s := MustParse("UPDATE toys SET qty=?, toy_name=? WHERE toy_id=?").(*UpdateStmt)
	if len(s.Set) != 2 {
		t.Fatalf("set: %+v", s.Set)
	}
	if s.Set[0].Value.Param != 0 || s.Set[1].Value.Param != 1 || s.Where[0].Right.Param != 2 {
		t.Errorf("parameter numbering wrong: %+v %+v", s.Set, s.Where)
	}
}

func TestParseUpdateRequiresWhere(t *testing.T) {
	if _, err := Parse("UPDATE toys SET qty=?"); err == nil {
		t.Error("UPDATE without WHERE should be rejected")
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE b='it''s'").(*SelectStmt)
	if s.Where[0].Right.Const.Str != "it's" {
		t.Errorf("got %q", s.Where[0].Right.Const.Str)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ! b",
		"SELECT a FROM t WHERE a = 'unterminated",
		"DROP TABLE t",
		"SELECT a FROM t alias trailing",
		"INSERT INTO t VALUES (?)",
		"SELECT a FROM t LIMIT -3",
		"SELECT a FROM t WHERE a <> b",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestNumParams(t *testing.T) {
	cases := []struct {
		src string
		n   int
	}{
		{"SELECT a FROM t", 0},
		{"SELECT a FROM t WHERE b=? AND c>?", 2},
		{"INSERT INTO t (a, b, c) VALUES (?, ?, ?)", 3},
		{"UPDATE t SET a=? WHERE id=?", 2},
		{"DELETE FROM t WHERE id=?", 1},
	}
	for _, c := range cases {
		if got := NumParams(MustParse(c.src)); got != c.n {
			t.Errorf("NumParams(%q) = %d, want %d", c.src, got, c.n)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT toy_id FROM toys WHERE toy_name=?",
		"SELECT t1.toy_id, t1.qty, t2.toy_id, t2.qty FROM toys AS t1, toys AS t2 WHERE t1.toy_name=? AND t2.toy_name=? AND t1.qty>t2.qty",
		"SELECT MAX(qty) FROM toys",
		"SELECT a, b FROM t WHERE a>=? ORDER BY b DESC LIMIT 10",
		"SELECT i_id, SUM(qty) AS total FROM order_line GROUP BY i_id ORDER BY total DESC LIMIT 50",
		"INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)",
		"DELETE FROM toys WHERE toy_id=?",
		"UPDATE toys SET qty=? WHERE toy_id=?",
	}
	for _, src := range srcs {
		s1 := MustParse(src)
		s2, err := Parse(s1.String())
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", s1.String(), err)
			continue
		}
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n  %q\n  %q", s1.String(), s2.String())
		}
	}
}

func TestParamNumberingLeftToRight(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE b=? AND c=? AND d=?").(*SelectStmt)
	for i, p := range s.Where {
		if p.Right.Param != i {
			t.Errorf("pred %d param = %d", i, p.Right.Param)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{FloatVal(1.5), IntVal(2), -1},
		{IntVal(2), FloatVal(1.5), 1},
		{StringVal("a"), StringVal("b"), -1},
		{StringVal("a"), StringVal("a"), 0},
		{Null(), IntVal(0), -1},
		{IntVal(0), Null(), 1},
		{Null(), Null(), 0},
		{IntVal(1), StringVal("1"), -1}, // numbers order before strings
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.cmp)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	vals := func(x int64, f float64, s string, pick uint8) Value {
		switch pick % 4 {
		case 0:
			return IntVal(x)
		case 1:
			return FloatVal(f)
		case 2:
			return StringVal(s)
		default:
			return Null()
		}
	}
	f := func(x1, x2 int64, f1, f2 float64, s1, s2 string, p1, p2 uint8) bool {
		a, b := vals(x1, f1, s1, p1), vals(x2, f2, s2, p2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	if got := StringVal("it's").String(); got != "'it''s'" {
		t.Errorf("got %s", got)
	}
	if got := IntVal(-5).String(); got != "-5" {
		t.Errorf("got %s", got)
	}
	if got := Null().String(); got != "NULL" {
		t.Errorf("got %s", got)
	}
}

func TestCompareOpHoldsAndFlip(t *testing.T) {
	ops := []CompareOp{OpEq, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		for _, cmp := range []int{-1, 0, 1} {
			// a op b  ⟺  b flip(op) a; flipping the comparison negates cmp.
			if op.Holds(cmp) != op.Flip().Holds(-cmp) {
				t.Errorf("Flip inconsistent for %v cmp=%d", op, cmp)
			}
		}
	}
	if !OpLe.Holds(0) || !OpLe.Holds(-1) || OpLe.Holds(1) {
		t.Error("OpLe.Holds wrong")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := MustParse("select a from t where b=? order by a limit 5").(*SelectStmt)
	if s.Limit != 5 || len(s.OrderBy) != 1 {
		t.Errorf("%+v", s)
	}
}

func TestHasEmbeddedConstant(t *testing.T) {
	if HasEmbeddedConstant(MustParse("SELECT a FROM t WHERE b=?")) {
		t.Error("param-only template reported as having constants")
	}
	if !HasEmbeddedConstant(MustParse("SELECT a FROM t WHERE b=5")) {
		t.Error("constant predicate not detected")
	}
	if !HasEmbeddedConstant(MustParse("UPDATE t SET a=3 WHERE id=?")) {
		t.Error("constant SET value not detected")
	}
}

func TestStatementStringContainsKeywords(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE b=? AND c=? ORDER BY a LIMIT 3")
	str := s.String()
	for _, kw := range []string{"SELECT", "FROM", "WHERE", "AND", "ORDER BY", "LIMIT 3"} {
		if !strings.Contains(str, kw) {
			t.Errorf("String() = %q missing %q", str, kw)
		}
	}
}
