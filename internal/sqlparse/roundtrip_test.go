package sqlparse

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomSelect generates a random statement of the subset grammar.
func randomSelect(rng *rand.Rand) *SelectStmt {
	tables := []string{"alpha", "beta", "gamma"}
	cols := []string{"a", "b", "c", "d"}
	nFrom := 1 + rng.Intn(2)
	s := &SelectStmt{Limit: -1}
	for i := 0; i < nFrom; i++ {
		ref := TableRef{Table: tables[i]}
		if rng.Intn(2) == 0 {
			ref.Alias = "t" + string(rune('0'+i))
		}
		s.From = append(s.From, ref)
	}
	colRef := func() ColumnRef {
		f := s.From[rng.Intn(len(s.From))]
		return ColumnRef{Table: f.Name(), Column: cols[rng.Intn(len(cols))]}
	}
	// Projections.
	if rng.Intn(8) == 0 {
		s.Select = []SelectExpr{{Star: true}}
	} else {
		for i := 0; i < 1+rng.Intn(3); i++ {
			e := SelectExpr{Col: colRef()}
			if rng.Intn(6) == 0 {
				e.Agg = []AggFunc{AggMin, AggMax, AggCount, AggSum, AggAvg}[rng.Intn(5)]
			}
			if rng.Intn(4) == 0 {
				e.Alias = "out" + string(rune('0'+i))
			}
			s.Select = append(s.Select, e)
		}
	}
	// Predicates.
	param := 0
	ops := []CompareOp{OpEq, OpLt, OpLe, OpGt, OpGe}
	for i := 0; i < rng.Intn(4); i++ {
		p := Predicate{Left: Operand{Kind: OpColumn, Col: colRef()}, Op: ops[rng.Intn(len(ops))]}
		switch rng.Intn(3) {
		case 0:
			p.Right = Operand{Kind: OpParam, Param: param}
			param++
		case 1:
			p.Right = Operand{Kind: OpConst, Const: IntVal(int64(rng.Intn(100)))}
		default:
			p.Right = Operand{Kind: OpColumn, Col: colRef()}
		}
		s.Where = append(s.Where, p)
	}
	// Order by and limit.
	for i := 0; i < rng.Intn(3); i++ {
		s.OrderBy = append(s.OrderBy, OrderKey{Col: colRef(), Desc: rng.Intn(2) == 0})
	}
	if rng.Intn(3) == 0 {
		s.Limit = rng.Intn(100)
	}
	return s
}

// TestGeneratedSelectRoundTrip: String() of a generated AST re-parses to a
// statement with the identical String() — the canonical form is a fixed
// point, which the cache keying relies on.
func TestGeneratedSelectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		s := randomSelect(rng)
		src := s.String()
		re, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: re-parse of %q failed: %v", trial, src, err)
		}
		if re.String() != src {
			t.Fatalf("trial %d: canonical form not a fixed point:\n  %q\n  %q", trial, src, re.String())
		}
	}
}

// TestGeneratedSelectStructuralRoundTrip: re-parsing preserves structural
// features the analysis depends on (predicate count, limit, aggregates).
func TestGeneratedSelectStructuralRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		s := randomSelect(rng)
		re, err := Parse(s.String())
		if err != nil {
			t.Fatal(err)
		}
		rs := re.(*SelectStmt)
		if len(rs.Where) != len(s.Where) || rs.Limit != s.Limit ||
			len(rs.From) != len(s.From) || rs.HasAggregate() != s.HasAggregate() ||
			len(rs.OrderBy) != len(s.OrderBy) {
			t.Fatalf("trial %d: structure changed:\n%#v\n%#v", trial, s, rs)
		}
		if NumParams(rs) != NumParams(s) {
			t.Fatalf("trial %d: params changed", trial)
		}
	}
}

// TestUpdateRoundTrips covers the three update kinds with generated
// parameter positions.
func TestUpdateRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cols := []string{"a", "b", "c"}
	for trial := 0; trial < 500; trial++ {
		var stmt Statement
		switch rng.Intn(3) {
		case 0:
			ins := &InsertStmt{Table: "alpha"}
			for i, c := range cols {
				ins.Columns = append(ins.Columns, c)
				if rng.Intn(2) == 0 {
					ins.Values = append(ins.Values, Operand{Kind: OpParam, Param: i})
				} else {
					ins.Values = append(ins.Values, Operand{Kind: OpConst, Const: StringVal("v")})
				}
			}
			stmt = ins
		case 1:
			stmt = &DeleteStmt{Table: "alpha", Where: []Predicate{{
				Left:  Operand{Kind: OpColumn, Col: ColumnRef{Column: "a"}},
				Op:    OpLt,
				Right: Operand{Kind: OpParam},
			}}}
		default:
			stmt = &UpdateStmt{Table: "alpha",
				Set: []Assignment{{Column: "b", Value: Operand{Kind: OpParam, Param: 0}}},
				Where: []Predicate{{
					Left:  Operand{Kind: OpColumn, Col: ColumnRef{Column: "a"}},
					Op:    OpEq,
					Right: Operand{Kind: OpParam, Param: 1},
				}}}
		}
		src := stmt.String()
		re, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, src, err)
		}
		if re.String() != src {
			t.Fatalf("trial %d: %q != %q", trial, src, re.String())
		}
		if reflect.TypeOf(re) != reflect.TypeOf(stmt) {
			t.Fatalf("trial %d: kind changed", trial)
		}
	}
}
