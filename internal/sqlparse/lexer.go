package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam  // ?
	tokComma  // ,
	tokLParen // (
	tokRParen // )
	tokDot    // .
	tokStar   // *
	tokOp     // = < <= > >=
)

type token struct {
	kind tokenKind
	text string // raw text (idents keep original case; strings are unquoted)
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error for unterminated strings or
// characters outside the subset grammar.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '?':
			l.emit(tokParam, "?")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '=':
			l.emit(tokOp, "=")
		case c == '<' || c == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.toks = append(l.toks, token{tokOp, l.src[l.pos : l.pos+2], l.pos})
				l.pos += 2
			} else {
				l.emit(tokOp, string(c))
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind, text, l.pos})
	l.pos += len(text)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{tokString, b.String(), start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
