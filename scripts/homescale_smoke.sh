#!/usr/bin/env bash
# Distributed-home-tier smoke test: replay the same toystore script once
# through a fleet whose trusted tier is replicated — a dssphome primary
# (-replicas) streaming confirmed updates to two dssphome read replicas
# (-replica-of), fronted by a dssprouter and two dsspnode processes
# spreading misses across the replicas (-home-replicas) — and once through
# a single-home, single-node reference. The deployments must be
# indistinguishable: the replicated fleet's merged invalidation-decision
# log and cache dump diff clean against the reference's. Along the way the
# script asserts the apply stream actually converged (both replicas report
# the confirmed watermark), that replicas served misses, and that SIGTERM
# shuts the primary down gracefully (exit 0, streams drained).
set -euo pipefail
cd "$(dirname "$0")/.."

KEY=homescale-smoke
ROUTER_PORT=18700 HOME_PORT=18701 REP0_PORT=18702 REP1_PORT=18703
NODE0_PORT=18704 NODE1_PORT=18705
SOLO_HOME_PORT=18711 SOLO_NODE_PORT=18712
BIN=$(mktemp -d) OUT=$(mktemp -d)

cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dssphome ./cmd/dsspnode ./cmd/dssprouter ./cmd/dsspclient

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf -o /dev/null "$1/v1/metrics"; then return 0; fi
    sleep 0.1
  done
  echo "smoke: server at $1 did not come up" >&2
  exit 1
}

# The parity script, split around the update so the replicated run can
# wait for the apply stream between halves: miss/store, miss/store, hit,
# then the invalidating update; afterwards the re-misses and fresh misses
# that a converged replica may serve.
replay_pre() {
  local url=$1
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -update U1 -params 1 >/dev/null
}
replay_post() {
  local url=$1
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 5 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 2 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 3 >/dev/null
}

echo "smoke: replicated home tier (primary + 2 replicas + router + 2 nodes)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$HOME_PORT" -replicas &
PRIMARY_PID=$!
wait_up "http://localhost:$HOME_PORT"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$REP0_PORT" \
  -replica-of "http://localhost:$HOME_PORT" -advertise "http://localhost:$REP0_PORT" &
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$REP1_PORT" \
  -replica-of "http://localhost:$HOME_PORT" -advertise "http://localhost:$REP1_PORT" &
wait_up "http://localhost:$REP0_PORT"
wait_up "http://localhost:$REP1_PORT"
"$BIN/dsspnode" -app toystore -addr ":$NODE0_PORT" -home "http://localhost:$HOME_PORT" \
  -home-replicas "http://localhost:$REP0_PORT,http://localhost:$REP1_PORT" &
"$BIN/dsspnode" -app toystore -addr ":$NODE1_PORT" -home "http://localhost:$HOME_PORT" \
  -home-replicas "http://localhost:$REP0_PORT,http://localhost:$REP1_PORT" &
wait_up "http://localhost:$NODE0_PORT"
wait_up "http://localhost:$NODE1_PORT"
"$BIN/dssprouter" -app toystore -addr ":$ROUTER_PORT" \
  -nodes "http://localhost:$NODE0_PORT,http://localhost:$NODE1_PORT" &
wait_up "http://localhost:$ROUTER_PORT"

replay_pre "http://localhost:$ROUTER_PORT"

# The update confirmed at the primary; wait for the stream to land it on
# both replicas (registration retries once a second, so allow a few).
for port in "$REP0_PORT" "$REP1_PORT"; do
  for _ in $(seq 1 100); do
    applied=$(curl -sf "http://localhost:$port/v1/replica/status" | jq -r .applied)
    [ "$applied" = 1 ] && break
    sleep 0.1
  done
  if [ "$applied" != 1 ]; then
    echo "smoke: replica on :$port applied $applied, want 1 (stream never converged)" >&2
    exit 1
  fi
done
echo "smoke: confirmed-update stream converged on both replicas"

replay_post "http://localhost:$ROUTER_PORT"

# The post-update misses must have been spread to the (now fresh)
# replicas, not all bounced to the primary.
served=$(for port in "$REP0_PORT" "$REP1_PORT"; do
  curl -sf "http://localhost:$port/v1/replica/status"
done | jq -s 'map(.served) | add')
if [ "$served" -lt 1 ]; then
  echo "smoke: replicas served $served misses, want at least 1" >&2
  exit 1
fi
echo "smoke: replicas served $served misses under the staleness protocol"

curl -sf "http://localhost:$NODE0_PORT/v1/decisions" >"$OUT/node0.json"
curl -sf "http://localhost:$NODE1_PORT/v1/decisions" >"$OUT/node1.json"

# Graceful shutdown: SIGTERM the primary; it must flush the confirmation
# gate, drain the replica streams, and exit 0 — no torn interval.
kill -TERM "$PRIMARY_PID"
if ! wait "$PRIMARY_PID"; then
  echo "smoke: primary did not shut down gracefully on SIGTERM" >&2
  exit 1
fi
echo "smoke: primary drained and exited cleanly on SIGTERM"
cleanup

# Canonical observable state: merge the fleet's logs, sort. Template
# affinity guarantees disjoint per-node logs, so the sorted merge must
# equal the sorted single-node reference exactly — replicated home tier
# and all.
jq -s -S '{decisions: (map(.decisions // []) | add
                       | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort),
           dump: (map(.dump // []) | add | sort)}' \
  "$OUT/node0.json" "$OUT/node1.json" >"$OUT/fleet.json"

echo "smoke: single-home reference (dsspnode + dssphome)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_HOME_PORT"
"$BIN/dsspnode" -app toystore -addr ":$SOLO_NODE_PORT" -home "http://localhost:$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_NODE_PORT"
replay_pre "http://localhost:$SOLO_NODE_PORT"
replay_post "http://localhost:$SOLO_NODE_PORT"
curl -sf "http://localhost:$SOLO_NODE_PORT/v1/decisions" |
  jq -s -S '{decisions: (map(.decisions // []) | add
                         | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort),
             dump: (map(.dump // []) | add | sort)}' >"$OUT/solo.json"

diff -u "$OUT/solo.json" "$OUT/fleet.json"
echo "smoke: replicated home tier matches single home (decision log + cache dump)"
