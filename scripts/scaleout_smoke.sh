#!/usr/bin/env bash
# Scale-out smoke test: replay the same toystore script once through a
# dssprouter fronting two dsspnode processes and once through a single
# node. The deployments must be indistinguishable: the fleet's merged
# invalidation-decision log and cache dump (served by /v1/decisions) diff
# clean against the single-node run's.
set -euo pipefail
cd "$(dirname "$0")/.."

KEY=scaleout-smoke
ROUTER_PORT=18600 HOME_PORT=18601 NODE0_PORT=18602 NODE1_PORT=18603
SOLO_HOME_PORT=18611 SOLO_NODE_PORT=18612
BIN=$(mktemp -d) OUT=$(mktemp -d)

cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dssphome ./cmd/dsspnode ./cmd/dssprouter ./cmd/dsspclient

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf -o /dev/null "$1/v1/metrics"; then return 0; fi
    sleep 0.1
  done
  echo "smoke: server at $1 did not come up" >&2
  exit 1
}

# The pipeline parity script: miss/store, miss/store, hit, invalidating
# update, re-miss, miss/store.
replay() {
  local url=$1
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -update U1 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 5 >/dev/null
}

echo "smoke: routed fleet (dssprouter + 2 dsspnode + dssphome)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$HOME_PORT" &
wait_up "http://localhost:$HOME_PORT"
"$BIN/dsspnode" -app toystore -addr ":$NODE0_PORT" -home "http://localhost:$HOME_PORT" &
"$BIN/dsspnode" -app toystore -addr ":$NODE1_PORT" -home "http://localhost:$HOME_PORT" &
wait_up "http://localhost:$NODE0_PORT"
wait_up "http://localhost:$NODE1_PORT"
"$BIN/dssprouter" -app toystore -addr ":$ROUTER_PORT" \
  -nodes "http://localhost:$NODE0_PORT,http://localhost:$NODE1_PORT" &
wait_up "http://localhost:$ROUTER_PORT"

replay "http://localhost:$ROUTER_PORT"
curl -sf "http://localhost:$NODE0_PORT/v1/decisions" >"$OUT/node0.json"
curl -sf "http://localhost:$NODE1_PORT/v1/decisions" >"$OUT/node1.json"

# Fleet-wide trace: one more request, then fetch its spans back from
# every process's /v1/trace endpoint. The client logs the trace ID; the
# stitched union must carry that one ID through the router proxy, the
# owning node's cache probe, and the home server's execution.
echo "smoke: stitching one request's trace across router, nodes, and home"
TRACE=$("$BIN/dsspclient" -app toystore -key "$KEY" -node "http://localhost:$ROUTER_PORT" \
  -query Q2 -params 3 2>&1 >/dev/null | grep -o 'trace=[^ ]*' | head -1 | cut -d= -f2)
[ -n "$TRACE" ] || { echo "smoke: dsspclient logged no trace ID" >&2; exit 1; }
: >"$OUT/spans.json"
for port in "$ROUTER_PORT" "$NODE0_PORT" "$NODE1_PORT" "$HOME_PORT"; do
  # A process that never saw the trace answers 404; count it as no spans.
  curl -sf "http://localhost:$port/v1/trace/$TRACE" >>"$OUT/spans.json" || echo '[]' >>"$OUT/spans.json"
  echo >>"$OUT/spans.json"
done
jq -s --arg id "$TRACE" '
  add
  | if (map(select(.trace != $id)) | length) > 0 then error("span with foreign trace ID") else . end
  | [.[].stage] as $stages
  | if ($stages | contains(["route"]) and contains(["cache_lookup"]) and contains(["home_exec"]))
    then "smoke: trace \($id) covers \($stages | join(", "))"
    else error("trace misses a hop: \($stages | join(", "))") end' \
  -r "$OUT/spans.json"
cleanup

# Canonical observable state: merge the fleet's logs, drop the per-run
# trace IDs, sort. Template affinity guarantees disjoint per-node logs,
# so the sorted merge must equal the sorted single-node log exactly.
jq -s -S '{decisions: (map(.decisions // []) | add
                       | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort),
           dump: (map(.dump // []) | add | sort)}' \
  "$OUT/node0.json" "$OUT/node1.json" >"$OUT/fleet.json"

echo "smoke: single-node reference (dsspnode + dssphome)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_HOME_PORT"
"$BIN/dsspnode" -app toystore -addr ":$SOLO_NODE_PORT" -home "http://localhost:$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_NODE_PORT"
replay "http://localhost:$SOLO_NODE_PORT"
curl -sf "http://localhost:$SOLO_NODE_PORT/v1/decisions" |
  jq -s -S '{decisions: (map(.decisions // []) | add
                         | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort),
             dump: (map(.dump // []) | add | sort)}' >"$OUT/solo.json"

diff -u "$OUT/solo.json" "$OUT/fleet.json"
echo "smoke: routed fleet matches single node (decision log + cache dump)"
