#!/usr/bin/env bash
# Elastic-fleet smoke test over real processes: a dssprouter fronting two
# dsspnode processes admits a third node mid-run with a warm handoff
# (POST /v1/ring/join), drains a veteran node out of the ring (warm
# leave), then declares another node dead (warm=false). Asserts:
#   - each membership change flips the epoch and the ring view agrees;
#   - the warm drain streams sealed buckets and every previously cached
#     entry still hits — including entries rehomed onto the node that
#     joined mid-run;
#   - the kill shrinks the ring and the fleet keeps serving;
#   - after all the churn, the fleet's merged invalidation-decision log
#     still diffs clean against a static single-node reference replay —
#     membership changes must never invent or lose decisions.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "elastic_smoke: jq is required" >&2; exit 1; }

KEY=elastic-smoke
ROUTER_PORT=18700 HOME_PORT=18701 NODE0_PORT=18702 NODE1_PORT=18703 NODE2_PORT=18704
SOLO_HOME_PORT=18711 SOLO_NODE_PORT=18712
BIN=$(mktemp -d) OUT=$(mktemp -d)

cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dssphome ./cmd/dsspnode ./cmd/dssprouter ./cmd/dsspclient

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf -o /dev/null "$1/v1/metrics"; then return 0; fi
    sleep 0.1
  done
  echo "elastic_smoke: server at $1 did not come up" >&2
  exit 1
}

# Sum of dssp_cache_hits_total (all template labels) across the given
# node ports. /v1/metrics serves JSON.
fleet_hits() {
  local total=0 port
  for port in "$@"; do
    local h
    h=$(curl -sf "http://localhost:$port/v1/metrics" |
      jq '[.metrics[] | select(.name == "dssp_cache_hits_total") | .value // 0] | add // 0')
    total=$((total + h))
  done
  echo "$total"
}

# The pipeline parity script: miss/store, miss/store, hit, invalidating
# update, re-miss/store, miss/store. Leaves Q1(bear) and Q2(5) cached.
replay() {
  local url=$1
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -update U1 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 5 >/dev/null
}

# Re-query both entries replay() left cached; each must hit somewhere.
probe_warm_entries() {
  local url=$1
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 5 >/dev/null
}

# Run a probe and require exactly $2 fresh fleet-wide hits.
assert_probe_hits() {
  local label=$1 want=$2 before after
  before=$(fleet_hits "$NODE0_PORT" "$NODE1_PORT" "$NODE2_PORT")
  probe_warm_entries "http://localhost:$ROUTER_PORT"
  after=$(fleet_hits "$NODE0_PORT" "$NODE1_PORT" "$NODE2_PORT")
  if (( after - before != want )); then
    echo "elastic_smoke: FAIL: $((after - before)) of $want warm entries hit $label (re-missed)" >&2
    exit 1
  fi
}

echo "elastic_smoke: routed fleet (dssprouter + 2 dsspnode + dssphome)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$HOME_PORT" &
wait_up "http://localhost:$HOME_PORT"
"$BIN/dsspnode" -app toystore -addr ":$NODE0_PORT" -home "http://localhost:$HOME_PORT" &
"$BIN/dsspnode" -app toystore -addr ":$NODE1_PORT" -home "http://localhost:$HOME_PORT" &
wait_up "http://localhost:$NODE0_PORT"
wait_up "http://localhost:$NODE1_PORT"
"$BIN/dssprouter" -app toystore -addr ":$ROUTER_PORT" \
  -nodes "http://localhost:$NODE0_PORT,http://localhost:$NODE1_PORT" &
wait_up "http://localhost:$ROUTER_PORT"

replay "http://localhost:$ROUTER_PORT"

echo "elastic_smoke: joining a third node mid-run"
"$BIN/dsspnode" -app toystore -addr ":$NODE2_PORT" -home "http://localhost:$HOME_PORT" &
wait_up "http://localhost:$NODE2_PORT"
curl -sf -X POST "http://localhost:$ROUTER_PORT/v1/ring/join" \
  -H 'Content-Type: application/json' \
  -d "{\"url\":\"http://localhost:$NODE2_PORT\",\"warm\":true}" >"$OUT/join.json"
jq -e '.kind == "join" and .warm and .epoch == 1 and (.members == [0, 1, 2])' "$OUT/join.json" >/dev/null ||
  { echo "elastic_smoke: bad join report:" >&2; cat "$OUT/join.json" >&2; exit 1; }
assert_probe_hits "after the join" 2
echo "elastic_smoke: join committed epoch 1; all warm entries still hit"

# Drain node 1 out of the ring. It owns every cached toystore bucket, so
# the warm leave must stream its sealed entries to the survivors — the
# consistent ring sends Q1's bucket to the node that joined a moment ago
# and Q2's back to node 0 — and the probes must hit on the new owners
# without ever touching the home server.
echo "elastic_smoke: draining node 1 (warm leave)"
curl -sf -X POST "http://localhost:$ROUTER_PORT/v1/ring/leave" \
  -H 'Content-Type: application/json' -d '{"node":1,"warm":true}' >"$OUT/leave.json"
jq -e '.kind == "leave" and .warm and .epoch == 2 and (.members == [0, 2])' "$OUT/leave.json" >/dev/null ||
  { echo "elastic_smoke: bad leave report:" >&2; cat "$OUT/leave.json" >&2; exit 1; }
MIGRATED=$(jq -r .entries_migrated "$OUT/leave.json")
if (( MIGRATED == 0 )); then
  echo "elastic_smoke: FAIL: warm leave streamed no entries off the drained node" >&2
  exit 1
fi
node2_before=$(fleet_hits "$NODE2_PORT")
assert_probe_hits "after the drain" 2
node2_after=$(fleet_hits "$NODE2_PORT")
if (( node2_after == node2_before )); then
  echo "elastic_smoke: FAIL: entries rehomed to the joined node never hit there" >&2
  exit 1
fi
echo "elastic_smoke: drain migrated $MIGRATED entries; joined node served $((node2_after - node2_before)) of them"

echo "elastic_smoke: killing node 0 (no drain)"
curl -sf -X POST "http://localhost:$ROUTER_PORT/v1/ring/leave" \
  -H 'Content-Type: application/json' -d '{"node":0,"warm":false}' >"$OUT/kill.json"
jq -e '.kind == "kill" and (.warm | not) and .epoch == 3 and (.members == [2])' "$OUT/kill.json" >/dev/null ||
  { echo "elastic_smoke: bad kill report:" >&2; cat "$OUT/kill.json" >&2; exit 1; }
curl -sf "http://localhost:$ROUTER_PORT/v1/ring" >"$OUT/ring.json"
jq -e '.epoch == 3 and (.members == [2])' "$OUT/ring.json" >/dev/null ||
  { echo "elastic_smoke: ring view disagrees:" >&2; cat "$OUT/ring.json" >&2; exit 1; }
# The shrunken fleet still serves.
"$BIN/dsspclient" -app toystore -key "$KEY" -node "http://localhost:$ROUTER_PORT" -query Q2 -params 2 >/dev/null
echo "elastic_smoke: single-survivor fleet serving at epoch 3"

# Decision-log parity across all the churn. The de-ringed node processes
# are still up, so their pre-churn decisions are readable; membership
# changes migrate entries but never decisions, and rehoming records none.
for port in "$NODE0_PORT" "$NODE1_PORT" "$NODE2_PORT"; do
  curl -sf "http://localhost:$port/v1/decisions" >>"$OUT/fleet_raw.json"
  echo >>"$OUT/fleet_raw.json"
done
jq -s -S '{decisions: (map(.decisions // []) | add
                       | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort)}' \
  "$OUT/fleet_raw.json" >"$OUT/fleet.json"
cleanup

echo "elastic_smoke: static single-node reference (dsspnode + dssphome)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_HOME_PORT"
"$BIN/dsspnode" -app toystore -addr ":$SOLO_NODE_PORT" -home "http://localhost:$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_NODE_PORT"
replay "http://localhost:$SOLO_NODE_PORT"
# The fleet probed its warm entries twice (after the join and after the
# drain) and then served Q2(2); replay the identical tail here so both
# sides saw the same op sequence.
probe_warm_entries "http://localhost:$SOLO_NODE_PORT"
probe_warm_entries "http://localhost:$SOLO_NODE_PORT"
"$BIN/dsspclient" -app toystore -key "$KEY" -node "http://localhost:$SOLO_NODE_PORT" -query Q2 -params 2 >/dev/null
curl -sf "http://localhost:$SOLO_NODE_PORT/v1/decisions" |
  jq -s -S '{decisions: (map(.decisions // []) | add
                         | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort)}' >"$OUT/solo.json"

diff -u "$OUT/solo.json" "$OUT/fleet.json"
echo "elastic_smoke: decision logs match the static-fleet reference across join + drain + kill"
