#!/usr/bin/env bash
# Partitioned-home-tier smoke test: replay the same toystore script once
# through a fleet whose trusted tier is split per table group — two
# dssphome partition masters (-partition 0/-partition 1 of -partitions 2,
# toys on partition 0, the FK-joined customers/credit_card pair on
# partition 1), fronted by a dsspnode routing each statement to its
# group's master (-home with both URLs) — and once through a
# single-partition reference. The deployments must be indistinguishable:
# the partitioned fleet's invalidation-decision log and cache dump diff
# clean against the reference's. Along the way the script asserts the
# write stream really split (both masters confirmed updates) and that a
# cross-partition update left the other partition's cache entries alone.
set -euo pipefail
cd "$(dirname "$0")/.."

KEY=partition-smoke
P0_PORT=18720 P1_PORT=18721 NODE_PORT=18722
SOLO_HOME_PORT=18731 SOLO_NODE_PORT=18732
BIN=$(mktemp -d) OUT=$(mktemp -d)

cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dssphome ./cmd/dsspnode ./cmd/dsspclient

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf -o /dev/null "$1/v1/metrics"; then return 0; fi
    sleep 0.1
  done
  echo "smoke: server at $1 did not come up" >&2
  exit 1
}

# The script spans both table groups: misses and a hit on each side of
# the split, an update on each partition, and the re-misses after. Q3
# joins customers and credit_card (group 1, zip codes are strings); Q1/Q2
# and U1 are the toys group (group 0); U2 inserts a card (group 1).
replay() {
  local url=$1
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q3 -params s:15213 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q3 -params s:15213 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -update U1 -params 1 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q3 -params s:15213 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -update U2 -params "4,s:4111,s:15213" >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q1 -params bear >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q3 -params s:15213 >/dev/null
  "$BIN/dsspclient" -app toystore -key "$KEY" -node "$url" -query Q2 -params 3 >/dev/null
}

# canonical extracts the observable state a deployment must agree on.
canonical() {
  jq -s -S '{decisions: (map(.decisions // []) | add
                         | map({UpdateTemplate, QueryTemplate, Class, Dropped}) | sort),
             dump: (map(.dump // []) | add | sort)}'
}

updates_total() {
  curl -sf "$1/v1/metrics?format=json" |
    jq '[.metrics[] | select(.name == "dssp_home_updates_total") | .value // 0] | add // 0'
}

echo "smoke: partitioned home tier (2 partition masters + node)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$P0_PORT" -partition 0 -partitions 2 &
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$P1_PORT" -partition 1 -partitions 2 &
wait_up "http://localhost:$P0_PORT"
wait_up "http://localhost:$P1_PORT"
"$BIN/dsspnode" -app toystore -addr ":$NODE_PORT" \
  -home "http://localhost:$P0_PORT,http://localhost:$P1_PORT" &
wait_up "http://localhost:$NODE_PORT"

replay "http://localhost:$NODE_PORT"

# The write stream must have split: U1 confirmed on partition 0's master,
# U2 on partition 1's — each exactly one update, neither on the other.
for port in "$P0_PORT" "$P1_PORT"; do
  got=$(updates_total "http://localhost:$port")
  if [ "$got" != 1 ]; then
    echo "smoke: partition master on :$port executed $got updates, want exactly 1" >&2
    exit 1
  fi
done
echo "smoke: write stream split across both partition masters (1 update each)"

curl -sf "http://localhost:$NODE_PORT/v1/decisions" | canonical >"$OUT/partitioned.json"
cleanup

echo "smoke: single-partition reference (dsspnode + dssphome)"
"$BIN/dssphome" -app toystore -key "$KEY" -addr ":$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_HOME_PORT"
"$BIN/dsspnode" -app toystore -addr ":$SOLO_NODE_PORT" -home "http://localhost:$SOLO_HOME_PORT" &
wait_up "http://localhost:$SOLO_NODE_PORT"
replay "http://localhost:$SOLO_NODE_PORT"
curl -sf "http://localhost:$SOLO_NODE_PORT/v1/decisions" | canonical >"$OUT/solo.json"

diff -u "$OUT/solo.json" "$OUT/partitioned.json"
echo "smoke: partitioned home tier matches single partition (decision log + cache dump)"
