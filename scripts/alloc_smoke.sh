#!/usr/bin/env bash
# Alloc-regression gate: run the hot-path micro-benchmarks with -benchmem
# and fail if any benchmark's steady-state allocs/op exceeds its budget in
# BENCH_allocs.json. Budgets carry headroom over the measured baseline so
# a noisy run does not flap, but sit an order of magnitude below the
# pre-pooling numbers — a pooling regression (a dropped sync.Pool, a
# reintroduced per-entry parse) trips the gate immediately.
#
# Runs without the race detector on purpose: -race defeats sync.Pool
# reuse, which would make every allocation count meaningless.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "alloc_smoke: jq is required" >&2; exit 1; }

# -benchtime 200x is enough for the pools to reach steady state (the Go
# bench framework warms each benchmark with shorter runs first) while
# keeping the smoke fast.
out=$(go test -run '^$' -bench 'BenchmarkSeal$|BenchmarkOpen$' -benchmem -benchtime 200x ./internal/encrypt)
out+=$'\n'
out+=$(go test -run '^$' -bench 'BenchmarkOnUpdateBatch' -benchmem -benchtime 200x ./internal/cache)
out+=$'\n'
out+=$(go test -run '^$' -bench 'BenchmarkRingOwner$' -benchmem -benchtime 200x ./internal/shard)
printf '%s\n' "$out"

fail=0
while IFS=$'\t' read -r name budget; do
    # Benchmark result lines look like:
    #   BenchmarkSeal  200  664 ns/op  216 MB/s  160 B/op  1 allocs/op
    # Names may gain a -<procs> suffix under GOMAXPROCS>1; match either.
    allocs=$(printf '%s\n' "$out" | awk -v n="$name" '
        $1 == n || index($1, n "-") == 1 {
            for (i = 2; i <= NF; i++) if ($i == "allocs/op") { print $(i-1); exit }
        }')
    if [[ -z "$allocs" ]]; then
        echo "alloc_smoke: FAIL $name: benchmark did not run" >&2
        fail=1
        continue
    fi
    if (( allocs > budget )); then
        echo "alloc_smoke: FAIL $name: $allocs allocs/op > budget $budget" >&2
        fail=1
    else
        echo "alloc_smoke: ok   $name: $allocs allocs/op <= budget $budget"
    fi
done < <(jq -r '.budgets | to_entries[] | "\(.key)\t\(.value)"' BENCH_allocs.json)

exit "$fail"
