// Bookstore drives the TPC-W-like benchmark end to end: it populates the
// store, serves a browsing session through the DSSP, places an order with
// an encrypted credit-card transaction, and then runs a miniature
// security-scalability experiment (the three Figure 3 points at reduced
// scale).
package main

import (
	"fmt"
	"log"
	"time"

	"dssp"
)

func main() {
	b := dssp.Bookstore()
	app := b.App()

	// Exposure assignment from the methodology: credit cards compulsory,
	// everything else reduced only where free.
	m := dssp.Methodology{App: app, Compulsory: b.Compulsory()}
	r := m.Run()

	key := make([]byte, dssp.KeySize)
	key[0] = 42 // demo key
	sys, err := dssp.NewSystem(app, key, r.Final)
	if err != nil {
		log.Fatal(err)
	}
	if err := dssp.PopulateBenchmark(b, sys.DB, 1); err != nil {
		log.Fatal(err)
	}

	// A browsing session: home page, product detail (twice: the second
	// detail view hits the DSSP cache), then checkout.
	fmt.Println("--- browsing ---")
	res, err := sys.Query("Q1", "user7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("home: customer %v %v\n", res.Rows[0][1], res.Rows[0][2])

	for i := 0; i < 2; i++ {
		res, hit, err := sys.QueryOutcome("Q5", 1) // most popular book
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("product detail %q cost=%v (cache hit: %v)\n", res.Rows[0][0].Str, res.Rows[0][1], hit)
	}

	fmt.Println("\n--- checkout ---")
	// Create a cart, add the popular book, place the order.
	mustUpdate(sys, "U6", 90001, 0, 0)                    // new cart
	mustUpdate(sys, "U7", 90001, 90001, 1, 2)             // cart line: 2 copies of book 1
	mustUpdate(sys, "U3", 90001, 7, 100, 5000, "PENDING") // order
	mustUpdate(sys, "U4", 90001, 90001, 1, 2, 0)          // order line
	affected, invalidated, err := sys.Update("U5",
		90001, "VISA", "4111-000000000000", "FN7 LN7", 12, 5000) // cc_xacts: encrypted params
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("credit-card transaction stored (affected=%d, invalidated=%d)\n", affected, invalidated)
	fmt.Println("the DSSP never sees the card number: U5 runs at 'template' exposure")

	_, invalidated, err = sys.Update("U9", 55, 1) // stock update for book 1
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stock update invalidated %d cached entries\n", invalidated)

	fmt.Printf("\ncache stats: %+v\n", sys.CacheStats())

	// Miniature Figure 3: scalability at the three security
	// configurations, at reduced scale so it finishes in seconds.
	fmt.Println("\n--- security-scalability tradeoff (mini Figure 3) ---")
	points := []struct {
		label string
		exps  map[string]dssp.Exposure
	}{
		{"no encryption ", dssp.UniformExposures(app, dssp.ExpView)},
		{"our approach  ", r.Final},
		{"full encryption", dssp.UniformExposures(app, dssp.ExpBlind)},
	}
	for _, p := range points {
		fresh := dssp.Bookstore()
		cfg := dssp.DefaultSimConfig(fresh, 0)
		cfg.Duration = 60 * time.Second
		cfg.Warmup = 20 * time.Second
		cfg.Exposures = p.exps
		users, err := dssp.MeasureScalability(cfg, dssp.DefaultSLA(), 1200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %2d query templates with encrypted results -> %4d users\n",
			p.label, dssp.EncryptedResultCount(fresh.App(), p.exps), users)
	}
}

func mustUpdate(sys *dssp.System, id string, params ...interface{}) {
	if _, _, err := sys.Update(id, params...); err != nil {
		log.Fatalf("%s: %v", id, err)
	}
}
