// Quickstart: define a tiny application, run the static analysis, and
// drive a complete DSSP system (client → caching node → home server) end
// to end. This is the paper's toystore example (Table 3 / §3.2).
package main

import (
	"fmt"
	"log"

	"dssp"
)

func main() {
	// The paper's toystore application: three query templates, two update
	// templates, a foreign key from credit cards to customers.
	app := dssp.Toystore()

	// 1. Static analysis: which data can be encrypted for free?
	analysis := dssp.Analyze(app)
	fmt.Println("IPM characterization (Table 4):")
	for _, u := range app.Updates {
		for _, q := range app.Queries {
			pa, _ := analysis.Pair(u.ID, q.ID)
			fmt.Printf("  %s/%s: %s\n", u.ID, q.ID, pa)
		}
	}

	// 2. The methodology: credit-card insertions must be encrypted
	//    (California law); everything else is reduced only where free.
	m := dssp.Methodology{
		App:        app,
		Compulsory: dssp.ExposureAssignment{"U2": dssp.ExpTemplate},
	}
	r := m.Run()
	fmt.Println("\nExposure assignment (§3.2):")
	for _, t := range append(append([]*dssp.Template{}, app.Queries...), app.Updates...) {
		fmt.Printf("  E(%s) = %-8s (was %s)\n", t.ID, r.Final[t.ID], r.Initial[t.ID])
	}

	// 3. Run the system under that assignment.
	key := make([]byte, dssp.KeySize) // demo key; use a random one in production
	sys, err := dssp.NewSystem(app, key, r.Final)
	if err != nil {
		log.Fatal(err)
	}

	// Load master data through the home server (inserts route through the
	// DSSP like any update).
	type toy struct {
		id   int64
		name string
		qty  int64
	}
	seedToys := []toy{{1, "bear", 10}, {2, "truck", 3}, {5, "kite", 25}}
	for _, t := range seedToys {
		row := []dssp.Value{dssp.Int(t.id), dssp.String(t.name), dssp.Int(t.qty)}
		if err := sys.DB.Insert("toys", row); err != nil {
			log.Fatal(err)
		}
	}

	// Query twice: the second time is served from the DSSP cache.
	for i := 0; i < 2; i++ {
		res, hit, err := sys.QueryOutcome("Q2", 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ2(5) -> qty=%v (cache hit: %v)", res.Rows[0][0], hit)
	}

	// Delete toy 5: the DSSP monitors the update and invalidates exactly
	// the affected entries.
	_, invalidated, err := sys.Update("U1", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\nU1(5) applied; %d cache entries invalidated\n", invalidated)

	res, hit, err := sys.QueryOutcome("Q2", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2(5) -> %d rows (cache hit: %v)\n", res.Len(), hit)
	fmt.Printf("\ncache stats: %+v\n", sys.CacheStats())
}
