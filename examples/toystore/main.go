// Toystore demonstrates the four invalidation strategy classes of §2.2 on
// the paper's running example: the same update is presented to a DSSP
// operating at each exposure level, reproducing the rows of Table 2 and
// the view-inspection refinements of §4.4 (top-k and MAX insertions).
package main

import (
	"fmt"
	"log"

	"dssp"
)

// strategyDemo runs one exposure configuration through a fresh system and
// reports how many cache entries the update invalidated.
func strategyDemo(name string, queryExp, updateExp dssp.Exposure) {
	app := dssp.Toystore()
	exps := dssp.ExposureAssignment{}
	for _, q := range app.Queries {
		exps[q.ID] = queryExp
	}
	for _, u := range app.Updates {
		exps[u.ID] = updateExp
	}
	key := make([]byte, dssp.KeySize)
	sys, err := dssp.NewSystem(app, key, exps)
	if err != nil {
		log.Fatal(err)
	}
	seed(sys)

	// Warm the cache with the Table 2 instances.
	mustQuery(sys, "Q1", "bear")
	mustQuery(sys, "Q1", "kite")
	mustQuery(sys, "Q2", 5)
	mustQuery(sys, "Q2", 2)
	mustQuery(sys, "Q3", "15213")

	// The Table 2 update: delete toy 5.
	_, invalidated, err := sys.Update("U1", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s invalidated %d of 5 cached entries\n", name, invalidated)
}

func main() {
	fmt.Println("Invalidations caused by U1(5), by information exposed to the DSSP")
	fmt.Println("(Table 2 of the paper; cached: Q1('bear'), Q1('kite'), Q2(5), Q2(2), Q3('15213'))")
	fmt.Println()
	strategyDemo("blind (everything encrypted)", dssp.ExpBlind, dssp.ExpBlind)
	strategyDemo("template inspection", dssp.ExpTemplate, dssp.ExpTemplate)
	strategyDemo("statement inspection", dssp.ExpStmt, dssp.ExpStmt)
	strategyDemo("view inspection (nothing encrypted)", dssp.ExpView, dssp.ExpStmt)

	fmt.Println("\nGreater exposure -> fewer invalidations -> more scalability;")
	fmt.Println("the static analysis finds the exposure that can be removed for free.")
}

func seed(sys *dssp.System) {
	toys := []struct {
		id   int64
		name string
		qty  int64
	}{{1, "bear", 10}, {2, "truck", 3}, {3, "bear", 7}, {5, "kite", 25}}
	for _, t := range toys {
		if err := sys.DB.Insert("toys", []dssp.Value{dssp.Int(t.id), dssp.String(t.name), dssp.Int(t.qty)}); err != nil {
			log.Fatal(err)
		}
	}
	for i := int64(1); i <= 2; i++ {
		if err := sys.DB.Insert("customers", []dssp.Value{dssp.Int(i), dssp.String(fmt.Sprintf("cust%d", i))}); err != nil {
			log.Fatal(err)
		}
		if err := sys.DB.Insert("credit_card", []dssp.Value{dssp.Int(i), dssp.String("4111"), dssp.String("15213")}); err != nil {
			log.Fatal(err)
		}
	}
}

func mustQuery(sys *dssp.System, id string, params ...interface{}) {
	if _, err := sys.Query(id, params...); err != nil {
		log.Fatal(err)
	}
}
