// Securitydesign walks the paper's scalability-conscious security design
// methodology (§3) over the three benchmark applications: Step 1 applies
// the California-law compulsory encryption, Step 2 runs the static
// analysis and reduces exposure wherever that costs no scalability, and
// the residual Step 3 tradeoff set is printed for the administrator.
package main

import (
	"fmt"

	"dssp"
)

func main() {
	for _, b := range []dssp.Benchmark{dssp.Auction(), dssp.BBoard(), dssp.Bookstore()} {
		app := b.App()
		m := dssp.Methodology{App: app, Compulsory: b.Compulsory()}
		r := m.Run()

		fmt.Printf("=== %s (%d query, %d update templates) ===\n",
			app.Name, len(app.Queries), len(app.Updates))

		reduced, residual := 0, 0
		for _, t := range append(append([]*dssp.Template{}, app.Queries...), app.Updates...) {
			switch {
			case r.Final[t.ID] < r.Initial[t.ID]:
				reduced++
			case r.Final[t.ID] > dssp.ExpBlind:
				residual++
			}
		}
		fmt.Printf("Step 1 (compulsory): %d templates capped by the privacy law\n", len(b.Compulsory()))
		fmt.Printf("Step 2 (free encryption): %d templates reduced at zero scalability cost\n", reduced)
		fmt.Printf("Step 3 (residual tradeoff): %d templates remain for manual consideration\n\n", residual)

		fmt.Printf("query results encrypted: %d of %d (%d before the analysis)\n",
			dssp.EncryptedResultCount(app, r.Final), len(app.Queries),
			dssp.EncryptedResultCount(app, r.Initial))

		fmt.Println("\nper-template exposure (initial -> final):")
		for _, t := range app.Queries {
			marker := ""
			if r.Final[t.ID] < r.Initial[t.ID] {
				marker = "  << reduced for free"
			}
			fmt.Printf("  %-4s %-8s -> %-8s%s\n", t.ID, r.Initial[t.ID], r.Final[t.ID], marker)
		}
		for _, t := range app.Updates {
			marker := ""
			if r.Final[t.ID] < r.Initial[t.ID] {
				marker = "  << reduced for free"
			}
			fmt.Printf("  %-4s %-8s -> %-8s%s\n", t.ID, r.Initial[t.ID], r.Final[t.ID], marker)
		}
		fmt.Println()
	}
}
