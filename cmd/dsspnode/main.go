// Command dsspnode runs an untrusted DSSP caching node for one
// application: it serves sealed queries from its cache, forwards misses
// and updates to the home server, and invalidates on completed updates.
// The node holds no keys — it only ever sees what the application's
// exposure assignment reveals.
//
// The node exposes GET /v1/metrics: per-template cache hit/miss and
// invalidation counters plus per-stage latency histograms, as JSON or
// (with ?format=prom) the Prometheus text format.
//
// Usage:
//
//	dsspnode -app toystore -addr :8400 -home http://localhost:8401
//	dsspnode -app bookstore -addr :8400 -home http://home:8401 -capacity 100000
//	dsspnode -app toystore -addr :8400 -id 0 -pprof localhost:6060
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	_ "net/http/pprof"

	"dssp/internal/apps"
	"dssp/internal/cache"
	"dssp/internal/core"
	"dssp/internal/dssp"
	"dssp/internal/httpapi"
	"dssp/internal/template"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	addr := flag.String("addr", ":8400", "listen address")
	home := flag.String("home", "http://localhost:8401", "home server base URL; comma-separated partition primaries in partition order for a partitioned home tier")
	homeReplicas := flag.String("home-replicas", "", "home read-replica base URLs to spread misses across: comma-separated within a partition, ';'-separated between partitions (aligned with -home)")
	nodeID := flag.String("id", "", "this node's fleet position, labelling its spans in stitched traces")
	capacity := flag.Int("capacity", 0, "cache capacity in entries (0 = unbounded)")
	constraints := flag.Bool("constraints", true, "use integrity constraints in the analysis (§4.5)")
	monitor := flag.Duration("monitor-interval", 0, "batch invalidation per monitoring interval (0 = invalidate inline per update)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "dsspnode")
	if *nodeID != "" {
		logger = logger.With("node", *nodeID)
	}
	app, err := resolveApp(*appName)
	if err != nil {
		logger.Error("bad application", "err", err)
		os.Exit(2)
	}
	analysis := core.Analyze(app, core.Options{UseIntegrityConstraints: *constraints})
	node := dssp.NewNode(app, analysis, cache.Options{Capacity: *capacity})
	primaries := splitList(*home, ",")
	if len(primaries) == 0 {
		logger.Error("bad -home", "err", "no primary URL")
		os.Exit(2)
	}
	// Replica lists align per partition: ';' separates partitions, ','
	// separates replicas within one. A lone comma-list is partition 0's.
	var partReplicas [][]string
	nReplicas := 0
	if *homeReplicas != "" {
		for _, part := range strings.Split(*homeReplicas, ";") {
			urls := splitList(part, ",")
			partReplicas = append(partReplicas, urls)
			nReplicas += len(urls)
		}
	}
	opts := httpapi.NodeOptions{
		MonitorInterval: *monitor,
		NodeID:          *nodeID,
	}
	if len(primaries) > 1 {
		opts.HomePartitionURLs = primaries
		opts.PartitionReplicaURLs = partReplicas
	} else if len(partReplicas) > 0 {
		opts.HomeReplicaURLs = partReplicas[0]
	}
	srv := httpapi.NewNodeServerWithOptions(node, primaries[0], nil, opts)

	servePprof(logger, *pprofAddr)
	logger.Info("DSSP node listening",
		"app", app.Name, "addr", *addr, "home", primaries[0], "home_partitions", len(primaries),
		"home_replicas", nReplicas,
		"capacity", *capacity, "monitor_interval", *monitor,
		"metrics", httpapi.PathMetrics, "traces", httpapi.PathTraces)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

// servePprof exposes net/http/pprof's DefaultServeMux handlers on their
// own listener, so profiling never shares a port with sealed traffic.
func servePprof(logger *slog.Logger, addr string) {
	if addr == "" {
		return
	}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof serve failed", "err", err)
		}
	}()
}

// splitList splits on sep, trimming whitespace and dropping empties.
func splitList(s, sep string) []string {
	var out []string
	for _, v := range strings.Split(s, sep) {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func resolveApp(name string) (*template.App, error) {
	switch name {
	case "toystore":
		return apps.Toystore(), nil
	case "auction":
		return apps.NewAuction().App(), nil
	case "bboard":
		return apps.NewBBoard().App(), nil
	case "bookstore":
		return apps.NewBookstore().App(), nil
	default:
		return nil, fmt.Errorf("dsspnode: unknown application %q", name)
	}
}
