// Command dssphome runs an application's home server: the master database
// plus the trusted HTTP endpoint the DSSP forwards sealed statements to
// (Figure 1). The demo key is derived from -key; in production the key
// never leaves the home organization.
//
// The server exposes GET /v1/metrics (JSON, or Prometheus text with
// ?format=prom): per-template execution counts and home_exec latency
// histograms.
//
// Usage:
//
//	dssphome -app toystore -addr :8401 -key secret
//	dssphome -app bookstore -addr :8401 -key secret -seed 1
//	dssphome -app toystore -addr :8401 -key secret -pprof localhost:6062
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"

	_ "net/http/pprof"

	"dssp/internal/apps"
	"dssp/internal/encrypt"
	"dssp/internal/homeserver"
	"dssp/internal/httpapi"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
	"dssp/internal/template"
	"dssp/internal/wire"
	"dssp/internal/workload"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	addr := flag.String("addr", ":8401", "listen address")
	keyPhrase := flag.String("key", "", "key phrase shared with clients (required)")
	seed := flag.Int64("seed", 1, "benchmark data seed")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently executing statements, FIFO queue beyond (0 = unbounded)")
	monitor := flag.Duration("monitor-interval", 0, "hold update confirmations and release them once per interval (0 = confirm immediately)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "dssphome")
	if *keyPhrase == "" {
		logger.Error("-key is required")
		os.Exit(2)
	}

	app, db, err := buildApp(*appName, *seed)
	if err != nil {
		logger.Error("build application", "err", err)
		os.Exit(1)
	}
	master := sha256.Sum256([]byte(*keyPhrase))
	codec := wire.NewCodec(app, encrypt.MustNewKeyring(master[:]), nil)
	home := homeserver.New(db, app, codec)
	home.SetAdmissionLimit(*maxConcurrent)
	home.SetMonitoringInterval(*monitor)

	servePprof(logger, *pprofAddr)
	logger.Info("home server listening",
		"app", app.Name, "addr", *addr,
		"query_templates", len(app.Queries), "update_templates", len(app.Updates),
		"metrics", httpapi.PathMetrics, "traces", httpapi.PathTraces)
	if err := http.ListenAndServe(*addr, httpapi.HomeHandler(home)); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

// servePprof exposes net/http/pprof's DefaultServeMux handlers on their
// own listener, so profiling never shares a port with sealed traffic.
func servePprof(logger *slog.Logger, addr string) {
	if addr == "" {
		return
	}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof serve failed", "err", err)
		}
	}()
}

// buildApp resolves the application and populates its master database.
func buildApp(name string, seed int64) (*template.App, *storage.Database, error) {
	if name == "toystore" {
		app := apps.Toystore()
		db := storage.NewDatabase(app.Schema)
		seedToystore(db)
		return app, db, nil
	}
	var b workload.Benchmark
	switch name {
	case "auction":
		b = apps.NewAuction()
	case "bboard":
		b = apps.NewBBoard()
	case "bookstore":
		b = apps.NewBookstore()
	default:
		return nil, nil, fmt.Errorf("dssphome: unknown application %q", name)
	}
	db := storage.NewDatabase(b.App().Schema)
	if err := b.Populate(db, rand.New(rand.NewSource(seed))); err != nil {
		return nil, nil, err
	}
	return b.App(), db, nil
}

func seedToystore(db *storage.Database) {
	iv, sv := sqlparse.IntVal, sqlparse.StringVal
	toys := []struct {
		id   int64
		name string
		qty  int64
	}{{1, "bear", 10}, {2, "truck", 3}, {3, "bear", 7}, {5, "kite", 25}}
	for _, t := range toys {
		_ = db.Insert("toys", storage.Row{iv(t.id), sv(t.name), iv(t.qty)})
	}
	for i := int64(1); i <= 3; i++ {
		_ = db.Insert("customers", storage.Row{iv(i), sv(fmt.Sprintf("cust%d", i))})
		_ = db.Insert("credit_card", storage.Row{iv(i), sv("4111"), sv("15213")})
	}
}
