// Command dssphome runs an application's home server: the master database
// plus the trusted HTTP endpoint the DSSP forwards sealed statements to
// (Figure 1). The demo key is derived from -key; in production the key
// never leaves the home organization.
//
// The trusted tier scales out with confirmed-update read replicas. A
// primary started with -replicas accepts replica registrations and
// streams every confirmed update, in sequence order, to each registered
// replica. A process started with -replica-of runs in replica mode: it
// builds the same application database from the same seed, serves sealed
// queries (refusing, with 409, any query whose freshness floor it has not
// applied yet), and registers itself with the primary for the stream.
//
// On SIGTERM/SIGINT the primary shuts down gracefully: the monitoring
// gate flushes (no confirmation is left parked mid-interval), in-flight
// statements drain, and the replica streams drain to the confirmed
// high-water mark — so no replica is left on a torn interval.
//
// The server exposes GET /v1/metrics (JSON, or Prometheus text with
// ?format=prom): per-template execution counts and home_exec latency
// histograms.
//
// Usage:
//
//	dssphome -app toystore -addr :8401 -key secret
//	dssphome -app toystore -addr :8401 -key secret -replicas
//	dssphome -app toystore -addr :8402 -key secret -replica-of http://localhost:8401 -advertise http://localhost:8402
//	dssphome -app bookstore -addr :8401 -key secret -seed 1
//	dssphome -app toystore -addr :8401 -key secret -pprof localhost:6062
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "net/http/pprof"

	"dssp/internal/apps"
	"dssp/internal/encrypt"
	"dssp/internal/home"
	"dssp/internal/homeserver"
	"dssp/internal/httpapi"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
	"dssp/internal/template"
	"dssp/internal/wire"
	"dssp/internal/workload"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	addr := flag.String("addr", ":8401", "listen address")
	keyPhrase := flag.String("key", "", "key phrase shared with clients (required)")
	seed := flag.Int64("seed", 1, "benchmark data seed")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently executing statements, FIFO queue beyond (0 = unbounded)")
	monitor := flag.Duration("monitor-interval", 0, "hold update confirmations and release them once per interval (0 = confirm immediately)")
	replicas := flag.Bool("replicas", false, "accept read-replica registrations and stream confirmed updates to them")
	partition := flag.Int("partition", 0, "this server's partition index in a partitioned home tier")
	partitions := flag.Int("partitions", 1, "total home partitions; >1 makes this server refuse statements whose table group pins elsewhere")
	replicaOf := flag.String("replica-of", "", "run as a read replica of this primary's base URL")
	advertise := flag.String("advertise", "", "base URL this replica registers with the primary (default http://localhost<addr>)")
	injectLag := flag.Duration("inject-replica-lag", 0, "replica mode: stall every apply batch by this much (fault injection)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight statements and replica streams")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "dssphome")
	if *keyPhrase == "" {
		logger.Error("-key is required")
		os.Exit(2)
	}

	app, db, err := buildApp(*appName, *seed)
	if err != nil {
		logger.Error("build application", "err", err)
		os.Exit(1)
	}
	master := sha256.Sum256([]byte(*keyPhrase))
	codec := wire.NewCodec(app, encrypt.MustNewKeyring(master[:]), nil)
	servePprof(logger, *pprofAddr)

	if *partitions > 1 && (*partition < 0 || *partition >= *partitions) {
		logger.Error("bad -partition", "partition", *partition, "partitions", *partitions)
		os.Exit(2)
	}

	if *replicaOf != "" {
		runReplica(logger, app, db, codec, *addr, *replicaOf, *advertise, *maxConcurrent, *partition, *partitions, *injectLag, *drainTimeout)
		return
	}

	home := homeserver.New(db, app, codec)
	home.SetAdmissionLimit(*maxConcurrent)
	home.SetMonitoringInterval(*monitor)
	if *partitions > 1 {
		// Each partition runs as its own process over a full same-seed
		// database; the guard rejects misrouted statements by their true
		// template's group, never the untrusted routing hint.
		home.SetPartition(*partition, *partitions)
	}

	var hub *httpapi.ReplicaHub
	if *replicas {
		hub = httpapi.NewReplicaHub(nil, home.Obs())
		home.OnConfirm(hub.Confirm)
	}

	srv := &http.Server{Addr: *addr, Handler: httpapi.HomeHandlerWithHub(home, hub)}
	go func() {
		logger.Info("home server listening",
			"app", app.Name, "addr", *addr, "replicas", *replicas,
			"partition", *partition, "partitions", *partitions,
			"query_templates", len(app.Queries), "update_templates", len(app.Updates),
			"metrics", httpapi.PathMetrics, "traces", httpapi.PathTraces)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}()

	awaitSignal(logger)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Graceful order: new updates confirm inline, the parked interval
	// flushes, in-flight statements drain behind Shutdown, and finally the
	// replica streams catch up to the confirmed high-water mark.
	home.SetMonitoringInterval(0)
	home.Flush()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown: draining in-flight statements", "err", err)
	}
	home.Flush() // any update admitted during Shutdown confirmed inline; flush is a no-op then, belt and braces
	if hub != nil {
		if err := hub.Drain(ctx); err != nil {
			logger.Error("shutdown: draining replica streams", "err", err, "status", hub.Status())
		} else {
			logger.Info("replica streams drained", "confirmed", home.ConfirmedSeq())
		}
		hub.Close()
	}
	logger.Info("home server stopped", "assigned", home.AssignedSeq(), "confirmed", home.ConfirmedSeq())
}

// runReplica runs the process as a read replica: same application, same
// seeded database, serving sealed queries under the staleness protocol
// and applying the primary's confirmed-update stream.
func runReplica(logger *slog.Logger, app *template.App, db *storage.Database, codec *wire.Codec,
	addr, primaryURL, advertise string, maxConcurrent, partition, partitions int, injectLag, drainTimeout time.Duration) {
	rep := home.NewReplica(replicaName(addr), db, app, codec)
	rep.SetAdmissionLimit(maxConcurrent)
	if partitions > 1 {
		rep.SetPartition(partition, partitions)
	}
	if injectLag > 0 {
		rep.SetApplyDelay(injectLag)
		logger.Warn("fault injection active", "inject_replica_lag", injectLag)
	}

	srv := &http.Server{Addr: addr, Handler: httpapi.ReplicaHandler(rep)}
	go func() {
		logger.Info("home replica listening",
			"app", app.Name, "addr", addr, "primary", primaryURL,
			"metrics", httpapi.PathMetrics, "status", httpapi.PathReplicaStatus)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}()

	if advertise == "" {
		advertise = "http://localhost" + addr
	}
	// The primary may start after us; retry registration until it answers.
	go func() {
		for {
			st, err := httpapi.RegisterReplica(nil, primaryURL, advertise)
			if err == nil {
				logger.Info("registered with primary", "advertise", advertise, "stream_confirmed", st.Confirmed)
				return
			}
			logger.Warn("primary registration failed; retrying", "err", err)
			time.Sleep(time.Second)
		}
	}()

	awaitSignal(logger)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	logger.Info("home replica stopped", "applied", rep.Applied())
}

// replicaName derives the replica's metric label from its listen address.
func replicaName(addr string) string {
	return strings.TrimPrefix(strings.ReplaceAll(addr, ":", "-"), "-")
}

// awaitSignal blocks until SIGTERM or SIGINT.
func awaitSignal(logger *slog.Logger) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	sig := <-ch
	logger.Info("signal received; shutting down", "signal", sig.String())
}

// servePprof exposes net/http/pprof's DefaultServeMux handlers on their
// own listener, so profiling never shares a port with sealed traffic.
func servePprof(logger *slog.Logger, addr string) {
	if addr == "" {
		return
	}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof serve failed", "err", err)
		}
	}()
}

// buildApp resolves the application and populates its master database.
// Replicas call it with the same seed as the primary, which is what makes
// their databases byte-identical at sequence 0.
func buildApp(name string, seed int64) (*template.App, *storage.Database, error) {
	if name == "toystore" {
		app := apps.Toystore()
		db := storage.NewDatabase(app.Schema)
		seedToystore(db)
		return app, db, nil
	}
	var b workload.Benchmark
	switch name {
	case "auction":
		b = apps.NewAuction()
	case "bboard":
		b = apps.NewBBoard()
	case "bookstore":
		b = apps.NewBookstore()
	default:
		return nil, nil, fmt.Errorf("dssphome: unknown application %q", name)
	}
	db := storage.NewDatabase(b.App().Schema)
	if err := b.Populate(db, rand.New(rand.NewSource(seed))); err != nil {
		return nil, nil, err
	}
	return b.App(), db, nil
}

func seedToystore(db *storage.Database) {
	iv, sv := sqlparse.IntVal, sqlparse.StringVal
	toys := []struct {
		id   int64
		name string
		qty  int64
	}{{1, "bear", 10}, {2, "truck", 3}, {3, "bear", 7}, {5, "kite", 25}}
	for _, t := range toys {
		_ = db.Insert("toys", storage.Row{iv(t.id), sv(t.name), iv(t.qty)})
	}
	// Customer 4 has no card on file: an insert target for U2 that
	// satisfies both the credit_card primary key and its foreign key.
	for i := int64(1); i <= 4; i++ {
		_ = db.Insert("customers", storage.Row{iv(i), sv(fmt.Sprintf("cust%d", i))})
		if i <= 3 {
			_ = db.Insert("credit_card", storage.Row{iv(i), sv("4111"), sv("15213")})
		}
	}
}
