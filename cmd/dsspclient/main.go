// Command dsspclient is the trusted application side of the networked
// deployment: it seals a query or update with the application's key,
// sends it to a DSSP node, and prints the decrypted answer.
//
// Usage (with dssphome and dsspnode running):
//
//	dsspclient -app toystore -key secret -query Q2 -params 5
//	dsspclient -app toystore -key secret -update U1 -params 5
//	dsspclient -app toystore -key secret -query Q1 -params bear -exposure Q1=stmt
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"dssp/internal/apps"
	"dssp/internal/encrypt"
	"dssp/internal/httpapi"
	"dssp/internal/obs"
	"dssp/internal/template"
	"dssp/internal/wire"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	node := flag.String("node", "http://localhost:8400", "DSSP node base URL")
	keyPhrase := flag.String("key", "", "key phrase shared with the home server (required)")
	queryID := flag.String("query", "", "query template ID to execute")
	updateID := flag.String("update", "", "update template ID to execute")
	paramsArg := flag.String("params", "", "comma-separated parameters (integers or strings; prefix s: forces a string)")
	exposures := flag.String("exposure", "", "comma-separated overrides, e.g. Q1=stmt,U1=template")
	timeout := flag.Duration("timeout", httpapi.DefaultTimeout, "end-to-end deadline for the request")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "dsspclient")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	if *keyPhrase == "" || (*queryID == "") == (*updateID == "") {
		logger.Error("-key and exactly one of -query/-update are required")
		os.Exit(2)
	}
	app, err := resolveApp(*appName)
	if err != nil {
		fatal("bad application", err)
	}
	exps, err := parseExposures(*exposures)
	if err != nil {
		fatal("bad exposure override", err)
	}
	master := sha256.Sum256([]byte(*keyPhrase))
	codec := wire.NewCodec(app, encrypt.MustNewKeyring(master[:]), exps)
	client := httpapi.NewClient(codec, *node, nil)
	// A local span store captures each request's trace ID, so the log line
	// names the trace that the fleet's /v1/trace endpoints can resolve.
	store := obs.NewSpanStore(0)
	client.Tracer = obs.NewTracer(obs.NewRegistry(), obs.WallClock()).
		SetIdentity(obs.ProcClient, "").
		SetStore(store)
	lastTrace := func() string {
		if ids := store.TraceIDs(1); len(ids) == 1 {
			return ids[0]
		}
		return ""
	}
	params := parseParams(*paramsArg)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *queryID != "" {
		t := app.Query(*queryID)
		if t == nil {
			logger.Error("unknown query template", "template", *queryID)
			os.Exit(1)
		}
		r, err := client.Query(ctx, t, params...)
		if err != nil {
			logger.Error("query failed", "template", *queryID, "trace", lastTrace(), "err", err)
			os.Exit(1)
		}
		logger.Info("query done", "template", *queryID, "trace", lastTrace(),
			"hit", r.Outcome.Hit, "rows", r.Outcome.Rows)
		fmt.Printf("%s  (cache hit: %v)\n", strings.Join(r.Result.Columns, "\t"), r.Outcome.Hit)
		for _, row := range r.Result.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		return
	}
	t := app.Update(*updateID)
	if t == nil {
		logger.Error("unknown update template", "template", *updateID)
		os.Exit(1)
	}
	affected, invalidated, err := client.Update(ctx, t, params...)
	if err != nil {
		logger.Error("update failed", "template", *updateID, "trace", lastTrace(), "err", err)
		os.Exit(1)
	}
	logger.Info("update done", "template", *updateID, "trace", lastTrace(),
		"affected", affected, "invalidated", invalidated)
	fmt.Printf("rows affected: %d, cache entries invalidated: %d\n", affected, invalidated)
}

func resolveApp(name string) (*template.App, error) {
	switch name {
	case "toystore":
		return apps.Toystore(), nil
	case "auction":
		return apps.NewAuction().App(), nil
	case "bboard":
		return apps.NewBBoard().App(), nil
	case "bookstore":
		return apps.NewBookstore().App(), nil
	default:
		return nil, fmt.Errorf("dsspclient: unknown application %q", name)
	}
}

// parseParams turns "5,bear,7" into typed parameters: integers where the
// token parses as one, strings otherwise. An "s:" prefix forces a string
// — "s:15213" is the string "15213", for string columns holding numeric
// text (zip codes, card numbers).
func parseParams(s string) []interface{} {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]interface{}, len(parts))
	for i, p := range parts {
		if rest, ok := strings.CutPrefix(p, "s:"); ok {
			out[i] = rest
		} else if n, err := strconv.ParseInt(p, 10, 64); err == nil {
			out[i] = n
		} else {
			out[i] = p
		}
	}
	return out
}

// parseExposures parses "Q1=stmt,U1=template" overrides.
func parseExposures(s string) (map[string]template.Exposure, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]template.Exposure)
	for _, kv := range strings.Split(s, ",") {
		id, level, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("dsspclient: bad exposure %q", kv)
		}
		switch level {
		case "blind":
			out[id] = template.ExpBlind
		case "template":
			out[id] = template.ExpTemplate
		case "stmt":
			out[id] = template.ExpStmt
		case "view":
			out[id] = template.ExpView
		default:
			return nil, fmt.Errorf("dsspclient: bad exposure level %q", level)
		}
	}
	return out, nil
}
