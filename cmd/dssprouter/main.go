// Command dssprouter fronts a fleet of dsspnode processes: it splits the
// key space across the nodes by template affinity (consistent hashing),
// proxies each sealed query to its owning node, routes each update
// through one node's full update pathway, and fans invalidation out in
// parallel — only to the nodes the static analysis could not prove
// untouched. It speaks the same node API as dsspnode, so clients point at
// the router exactly as they would at a single node.
//
// Like a node, the router is untrusted and holds no keys: it computes the
// fan-out plan from the application's public template analysis and steers
// only by what sealed messages reveal. Statements with hidden template
// IDs fall back conservatively — blind queries spread by sealed key,
// blind or forged updates broadcast to every node.
//
// The node list is ordered: every process fronting the same fleet must
// pass the same -nodes value, because ownership is derived from the
// node's position in the list.
//
// Usage:
//
//	dssprouter -app toystore -addr :8399 -nodes http://n0:8400,http://n1:8410
//	dssprouter -app auction -addr :8399 -nodes http://n0:8400,http://n1:8410,http://n2:8420,http://n3:8430 -max-fanout 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"dssp/internal/apps"
	"dssp/internal/core"
	"dssp/internal/httpapi"
	"dssp/internal/template"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	addr := flag.String("addr", ":8399", "listen address")
	nodes := flag.String("nodes", "", "comma-separated node base URLs, in fleet order (same order on every router)")
	maxFanout := flag.Int("max-fanout", 0, "max concurrent invalidation pushes per update (0 = default)")
	constraints := flag.Bool("constraints", true, "use integrity constraints in the analysis (must match the nodes)")
	flag.Parse()

	app, err := resolveApp(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "dssprouter: -nodes requires at least one node URL")
		os.Exit(2)
	}
	analysis := core.Analyze(app, core.Options{UseIntegrityConstraints: *constraints})
	srv := httpapi.NewRouterServer(analysis, urls, httpapi.RouterOptions{MaxFanout: *maxFanout})

	log.Printf("DSSP router for %q on %s fronting %d nodes (%s), metrics: GET %s",
		app.Name, *addr, len(urls), strings.Join(urls, ", "), httpapi.PathMetrics)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func resolveApp(name string) (*template.App, error) {
	switch name {
	case "toystore":
		return apps.Toystore(), nil
	case "auction":
		return apps.NewAuction().App(), nil
	case "bboard":
		return apps.NewBBoard().App(), nil
	case "bookstore":
		return apps.NewBookstore().App(), nil
	default:
		return nil, fmt.Errorf("dssprouter: unknown application %q", name)
	}
}
