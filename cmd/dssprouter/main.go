// Command dssprouter fronts a fleet of dsspnode processes: it splits the
// key space across the nodes by template affinity (consistent hashing),
// proxies each sealed query to its owning node, routes each update
// through one node's full update pathway, and fans invalidation out in
// parallel — only to the nodes the static analysis could not prove
// untouched. It speaks the same node API as dsspnode, so clients point at
// the router exactly as they would at a single node.
//
// Like a node, the router is untrusted and holds no keys: it computes the
// fan-out plan from the application's public template analysis and steers
// only by what sealed messages reveal. Statements with hidden template
// IDs fall back conservatively — blind queries spread by sealed key,
// blind or forged updates broadcast to every node.
//
// The node list is ordered: every process fronting the same fleet must
// pass the same -nodes value, because ownership is derived from the
// node's position in the list.
//
// -nodes only sets the initial fleet. Membership is live: the ring admin
// endpoints grow and shrink it without a restart, re-deriving ownership
// on a consistent hash ring so each change only moves the buckets it
// must.
//
//	POST /v1/ring/join  {"url": "http://n2:8420", "warm": true}
//	POST /v1/ring/leave {"node": 0}            (or {"url": ...})
//	GET  /v1/ring
//
// A warm join streams the sealed buckets the new node is about to own
// from their current owners before the epoch flips, so the fleet's hit
// rate carries over; a warm leave drains the departing node's buckets to
// the survivors the same way. "warm": false skips the handoff — a cold
// join starts empty, a cold leave models a crash and loses the node's
// entries. The handoff moves ciphertext and sealed routing metadata
// only; the router and nodes never need keys to migrate entries. Each
// change returns a migration report ({kind, node, epoch, warm,
// moved_templates, entries_migrated, members}); GET /v1/ring serves the
// current epoch and membership.
//
// Usage:
//
//	dssprouter -app toystore -addr :8399 -nodes http://n0:8400,http://n1:8410
//	dssprouter -app auction -addr :8399 -nodes http://n0:8400,http://n1:8410,http://n2:8420,http://n3:8430 -max-fanout 8
//	dssprouter -app toystore -addr :8399 -nodes http://n0:8400 -pprof localhost:6061
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	_ "net/http/pprof"

	"dssp/internal/apps"
	"dssp/internal/core"
	"dssp/internal/httpapi"
	"dssp/internal/template"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	addr := flag.String("addr", ":8399", "listen address")
	nodes := flag.String("nodes", "", "comma-separated node base URLs, in fleet order (same order on every router)")
	maxFanout := flag.Int("max-fanout", 0, "max concurrent invalidation pushes per update (0 = default)")
	blindCache := flag.Int("blind-cache", 0, "blind-key routing cache entries (0 = default)")
	retryBackoff := flag.Duration("retry-backoff", 0, "pause before the single query retry after a proxy failure (0 = default)")
	constraints := flag.Bool("constraints", true, "use integrity constraints in the analysis (must match the nodes)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "dssprouter")
	app, err := resolveApp(*appName)
	if err != nil {
		logger.Error("bad application", "err", err)
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		logger.Error("-nodes requires at least one node URL")
		os.Exit(2)
	}
	analysis := core.Analyze(app, core.Options{UseIntegrityConstraints: *constraints})
	srv := httpapi.NewRouterServer(analysis, urls, httpapi.RouterOptions{
		MaxFanout:      *maxFanout,
		BlindCacheSize: *blindCache,
		RetryBackoff:   *retryBackoff,
	})

	servePprof(logger, *pprofAddr)
	logger.Info("DSSP router listening",
		"app", app.Name, "addr", *addr, "fleet", len(urls), "nodes", strings.Join(urls, ","),
		"metrics", httpapi.PathMetrics, "traces", httpapi.PathTraces)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

// servePprof exposes net/http/pprof's DefaultServeMux handlers on their
// own listener, so profiling never shares a port with sealed traffic.
func servePprof(logger *slog.Logger, addr string) {
	if addr == "" {
		return
	}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			logger.Error("pprof serve failed", "err", err)
		}
	}()
}

func resolveApp(name string) (*template.App, error) {
	switch name {
	case "toystore":
		return apps.Toystore(), nil
	case "auction":
		return apps.NewAuction().App(), nil
	case "bboard":
		return apps.NewBBoard().App(), nil
	case "bookstore":
		return apps.NewBookstore().App(), nil
	default:
		return nil, fmt.Errorf("dssprouter: unknown application %q", name)
	}
}
