// Command dsspbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports.
//
// Usage:
//
//	dsspbench -exp table2                 # invalidation scenarios (Table 2)
//	dsspbench -exp table4                 # toystore IPM characterization (Table 4)
//	dsspbench -exp table7                 # three-app IPM characterization (Table 7)
//	dsspbench -exp figure3                # bookstore security-scalability tradeoff
//	dsspbench -exp figure4 -app bboard    # strategy-class containment check
//	dsspbench -exp figure6 -pair U1/Q2    # one pair's invalidation probability matrix
//	dsspbench -exp figure7                # exposure reduction per template
//	dsspbench -exp route -app bboard      # invalidation-routing parity check
//	dsspbench -exp batch -app auction     # batched invalidation: identical decisions, amortized walks
//	dsspbench -exp figure8                # scalability per invalidation strategy
//	dsspbench -exp security               # §5.4 security-enhancement summary
//	dsspbench -exp coalesce               # single-flight miss coalescing under a hot-key storm
//	dsspbench -exp scaleout -app auction  # routed fleet throughput at 1/2/4 nodes (-out writes JSON)
//	dsspbench -exp homescale              # trusted-tier miss throughput at 0/2/4 read replicas (-out writes JSON)
//	dsspbench -exp obs -app bboard        # short run's metrics snapshot (-format json|prom)
//	dsspbench -exp leakage -apps auction,bboard,bookstore,toystore
//	                                      # adversary's-eye leakage audit per exposure level (-out writes JSON)
//	dsspbench -exp trace -app bboard      # stitched fleet-wide traces through router + 2 nodes + home
//	dsspbench -exp elastic                # warm vs cold membership-change recovery (-out writes JSON)
//	dsspbench -exp all                    # everything (simulations included)
//
// Simulation-based experiments (figure3, figure8) accept -full for the
// paper's 10-minute runs; the default quick mode uses 150-second runs that
// preserve the shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dssp/internal/apps"
	"dssp/internal/experiments"
	"dssp/internal/simrun"
	"dssp/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2|table4|table7|figure3|figure4|figure6|figure7|figure8|route|batch|security|ablation|capacity|nodes|coalesce|scaleout|homescale|obs|leakage|trace|elastic|all")
	app := flag.String("app", "bboard", "application for figure4/route/obs/scaleout/trace: auction|bboard|bookstore|toystore")
	pair := flag.String("pair", "U1/Q2", "toystore template pair for figure6, e.g. U1/Q2")
	full := flag.Bool("full", false, "use the paper's full 10-minute simulation runs")
	maxUsers := flag.Int("maxusers", 4000, "cap for the scalability search")
	seed := flag.Int64("seed", 1, "simulation seed")
	format := flag.String("format", "prom", "output format for -exp obs: prom|json")
	out := flag.String("out", "", "for -exp scaleout/leakage: also write the results as JSON to this file")
	appList := flag.String("apps", "", "comma-separated application list for -exp leakage (default: -app)")
	flag.Parse()

	opts := experiments.DefaultRunOptions()
	opts.Full = *full
	opts.MaxUsers = *maxUsers
	opts.Seed = *seed

	switch *exp {
	case "obs":
		exit(runObs(*app, *format, opts))
		return
	case "scaleout":
		exit(runScaleout(*app, *out, opts))
		return
	case "homescale":
		exit(runHomescale(*out, opts))
		return
	case "leakage":
		names := []string{*app}
		if *appList != "" {
			names = strings.Split(*appList, ",")
		}
		exit(runLeakage(names, *out, opts))
		return
	case "trace":
		exit(runTrace(*app, opts))
		return
	case "elastic":
		exit(runElastic(*out, opts))
		return
	}
	if err := run(*exp, *app, *pair, opts); err != nil {
		fmt.Fprintln(os.Stderr, "dsspbench:", err)
		os.Exit(1)
	}
}

// exit reports a fatal experiment error and terminates, or returns
// quietly on success.
func exit(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsspbench:", err)
		os.Exit(1)
	}
}

// runLeakage runs the adversary's-eye audit for each application across
// the four uniform exposure levels and, when asked, writes the committed
// benchmark artifact (BENCH_leakage.json shape). A monotonicity
// violation — more exposure showing the adversary less — is an error.
func runLeakage(appNames []string, out string, opts experiments.RunOptions) error {
	for _, n := range appNames {
		if _, err := benchmark(n); err != nil {
			return err
		}
	}
	r, err := experiments.LeakageAudit(appNames, 40, opts)
	if err != nil {
		return err
	}
	fmt.Println(r.Format())
	if bad := r.CheckMonotone(); len(bad) > 0 {
		return fmt.Errorf("leakage audit not monotone in exposure: %s", strings.Join(bad, "; "))
	}
	if out == "" {
		return nil
	}
	artifact := struct {
		Description string                     `json:"description"`
		Environment map[string]interface{}     `json:"environment"`
		Leakage     *experiments.LeakageResult `json:"leakage"`
	}{
		Description: fmt.Sprintf("Adversary's-eye leakage audit at the DSSP trust boundary: "+
			"go run ./cmd/dsspbench -exp leakage -apps %s. Each application simulated under every uniform "+
			"exposure level with a leakage observer on the node's sealed traffic; rows report what the "+
			"adversary sees (distinct keys, template/parameter visibility, plaintext fraction, "+
			"update-invalidation correlation) alongside the hit rate that exposure level buys.",
			strings.Join(appNames, ",")),
		Environment: map[string]interface{}{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"date":   time.Now().Format("2006-01-02"),
		},
		Leakage: r,
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

// runTrace drives three requests through a real router + two-node + home
// HTTP fleet and prints each one's stitched critical-path breakdown.
func runTrace(app string, opts experiments.RunOptions) error {
	r, err := experiments.TraceDemo(app, opts.Seed)
	if err != nil {
		return err
	}
	fmt.Println(r.Format())
	return nil
}

// runObs runs one short simulation and prints its metrics snapshot — the
// same names and labels a deployed node's /v1/metrics serves.
func runObs(app, format string, opts experiments.RunOptions) error {
	b, err := benchmark(app)
	if err != nil {
		return err
	}
	cfg := simrun.DefaultConfig(b, 50)
	cfg.Seed = opts.Seed
	cfg.Duration = 60 * time.Second
	if opts.Full {
		cfg.Duration = 10 * time.Minute
	}
	res, err := simrun.Simulate(cfg)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Metrics)
	case "prom", "prometheus":
		return res.Metrics.WritePrometheus(os.Stdout)
	default:
		return fmt.Errorf("unknown -format %q (want prom or json)", format)
	}
}

// runScaleout sweeps the routed fleet sizes in real time and, when asked,
// writes the committed benchmark artifact (BENCH_scaleout.json shape).
func runScaleout(app, out string, opts experiments.RunOptions) error {
	o := experiments.DefaultScaleoutOptions()
	o.Seed = opts.Seed
	r, err := experiments.Scaleout(app, o)
	if err != nil {
		return err
	}
	fmt.Println(r.Format())
	if out == "" {
		return nil
	}
	artifact := struct {
		Description string                      `json:"description"`
		Environment map[string]interface{}      `json:"environment"`
		Scaleout    *experiments.ScaleoutResult `json:"scaleout"`
	}{
		Description: fmt.Sprintf("Scale-out throughput of the routed fleet: go run ./cmd/dsspbench -exp scaleout -app %s. "+
			"One shared home server; each node capacity-gated to one %v service slot so a single host measures the fleet honestly; "+
			"%d closed-loop clients; hit rates over the measure window; fanout_skipped counts invalidation pushes the static analysis saved vs naive broadcast.",
			app, o.Service, o.Clients),
		Environment: map[string]interface{}{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"date":   time.Now().Format("2006-01-02"),
		},
		Scaleout: r,
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

// runElastic measures warm vs cold membership-change recovery on a live
// HTTP fleet and, when asked, writes the committed benchmark artifact
// (BENCH_elastic.json shape).
func runElastic(out string, opts experiments.RunOptions) error {
	o := experiments.DefaultElasticOptions()
	o.Seed = opts.Seed
	r, err := experiments.Elastic(o)
	if err != nil {
		return err
	}
	fmt.Println(r.Format())
	if out == "" {
		return nil
	}
	artifact := struct {
		Description string                     `json:"description"`
		Environment map[string]interface{}     `json:"environment"`
		Elastic     *experiments.ElasticResult `json:"elastic"`
	}{
		Description: fmt.Sprintf("Elastic-fleet recovery: go run ./cmd/dsspbench -exp elastic. "+
			"Router + 2 nodes + home over HTTP; a %d-entry bookstore working set is warmed, then a third node joins "+
			"with a warm sealed-bucket handoff and a node is killed; a fresh identically seeded fleet repeats the join cold. "+
			"Recovery time is the number of %d-op intervals until the aggregate hit rate is within %.0f%% of steady state.",
			r.WorkingSet, r.IntervalOps, 100*r.Threshold),
		Environment: map[string]interface{}{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"date":   time.Now().Format("2006-01-02"),
		},
		Elastic: r,
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

// runHomescale sweeps the trusted tier's read-replica counts under a
// sustained miss storm, then its partition counts under an update-heavy
// workload, and, when asked, writes the committed benchmark artifact
// (BENCH_homescale.json shape).
func runHomescale(out string, opts experiments.RunOptions) error {
	o := experiments.DefaultHomescaleOptions()
	o.Seed = opts.Seed
	r, err := experiments.Homescale(o)
	if err != nil {
		return err
	}
	fmt.Println(r.Format())
	if out == "" {
		return nil
	}
	artifact := struct {
		Description string                       `json:"description"`
		Environment map[string]interface{}       `json:"environment"`
		Homescale   *experiments.HomescaleResult `json:"homescale"`
	}{
		Description: fmt.Sprintf("Trusted-tier scale-out with confirmed-update read replicas: "+
			"go run ./cmd/dsspbench -exp homescale. One node drives an uncacheable miss storm (every query "+
			"asks for a non-existent row; empty results never cache) plus 1 update per %d ops; the primary "+
			"and each replica are capacity-gated to one %v service slot so a single host measures the tier "+
			"honestly. Rows report aggregate miss throughput and speedup vs the replica-free baseline, where "+
			"each miss executed, freshness-floor bypasses, and the widest sampled replica lag. The "+
			"update_heavy sweep partitions the master per table group (wideshop4, four independent groups, "+
			"every op an update, one gated slot per partition) and reports write throughput and speedup vs "+
			"the single-master baseline.",
			o.UpdateEvery, o.Service),
		Environment: map[string]interface{}{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"date":   time.Now().Format("2006-01-02"),
		},
		Homescale: r,
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

func run(exp, app, pair string, opts experiments.RunOptions) error {
	switch exp {
	case "table2":
		r, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "table4":
		fmt.Println(experiments.Table4().Format())
	case "table7":
		fmt.Println(experiments.Table7().Format())
	case "figure3":
		r, err := experiments.Figure3(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "figure4":
		b, err := benchmark(app)
		if err != nil {
			return err
		}
		r, err := experiments.Figure4(b, 2000, opts.Seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "figure6":
		parts := strings.SplitN(pair, "/", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -pair %q (want e.g. U1/Q2)", pair)
		}
		r, err := experiments.Figure6(parts[0], parts[1])
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "figure7":
		fmt.Println(experiments.Figure7().Format())
	case "figure8":
		r, err := experiments.Figure8(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "route":
		b, err := benchmark(app)
		if err != nil {
			return err
		}
		r, err := experiments.RouteParity(b, 400, opts.Seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if !r.Passed() {
			return fmt.Errorf("routing parity diverged")
		}
	case "security":
		fmt.Println(experiments.Security().Format())
	case "ablation":
		fmt.Println(experiments.AblationConstraints().Format())
		r, err := experiments.AblationScalability(app, opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "capacity":
		r, err := experiments.CapacitySweep(app, 150, []int{50, 100, 200, 400, 800, 0}, opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "nodes":
		r, err := experiments.NodeSweep(app, 200, []int{1, 2, 4, 8}, opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "coalesce":
		r, err := experiments.Coalesce(32, 5)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "batch":
		b, err := benchmark(app)
		if err != nil {
			return err
		}
		r, err := experiments.BatchInvalidation(b, 400, opts.Seed, []int{1, 4, 8, 32})
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if !r.Passed() {
			return fmt.Errorf("batched invalidation diverged")
		}
	case "all":
		for _, e := range []string{"table2", "table4", "table7", "figure4", "figure6", "figure7", "route", "batch", "security", "coalesce", "figure3", "figure8", "ablation", "capacity", "nodes"} {
			if err := run(e, app, pair, opts); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func benchmark(name string) (workload.Benchmark, error) {
	switch name {
	case "auction":
		return apps.NewAuction(), nil
	case "bboard":
		return apps.NewBBoard(), nil
	case "bookstore":
		return apps.NewBookstore(), nil
	case "toystore":
		return apps.NewToystoreBench(), nil
	default:
		return nil, fmt.Errorf("unknown application %q", name)
	}
}
