// Command dsspanalyze runs the paper's static analysis over one of the
// built-in applications: it prints the IPM characterization of every
// update/query template pair, then the scalability-conscious security
// design methodology's exposure assignment (California-law compulsory
// encryption followed by Step 2b reduction).
//
// Usage:
//
//	dsspanalyze -app bookstore
//	dsspanalyze -app toystore -constraints=false   # §4.5 ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"dssp/internal/apps"
	"dssp/internal/core"
	"dssp/internal/template"
	"dssp/internal/workload"
)

func main() {
	appName := flag.String("app", "toystore", "application: toystore|auction|bboard|bookstore")
	constraints := flag.Bool("constraints", true, "use integrity constraints (§4.5)")
	flag.Parse()

	if err := run(*appName, *constraints); err != nil {
		fmt.Fprintln(os.Stderr, "dsspanalyze:", err)
		os.Exit(1)
	}
}

func run(appName string, constraints bool) error {
	var app *template.App
	var compulsory map[string]template.Exposure
	switch appName {
	case "toystore":
		app = apps.Toystore()
		compulsory = map[string]template.Exposure{"U2": template.ExpTemplate}
	case "auction", "bboard", "bookstore":
		var b workload.Benchmark
		switch appName {
		case "auction":
			b = apps.NewAuction()
		case "bboard":
			b = apps.NewBBoard()
		default:
			b = apps.NewBookstore()
		}
		app = b.App()
		compulsory = b.Compulsory()
	default:
		return fmt.Errorf("unknown application %q", appName)
	}

	opts := core.Options{UseIntegrityConstraints: constraints}
	a := core.Analyze(app, opts)

	fmt.Printf("Application %s: %d query templates, %d update templates, %d pairs\n\n",
		app.Name, len(app.Queries), len(app.Updates), len(app.Queries)*len(app.Updates))
	fmt.Println("Templates:")
	for _, q := range app.Queries {
		fmt.Printf("  %-4s %s\n", q.ID, q.SQL)
	}
	for _, u := range app.Updates {
		fmt.Printf("  %-4s %s\n", u.ID, u.SQL)
	}

	fmt.Println("\nIPM characterization (per update/query pair):")
	for i, u := range app.Updates {
		for j, q := range app.Queries {
			pa := a.Pairs[i][j]
			note := ""
			if pa.ByConstraint {
				note = "  [by integrity constraint]"
			}
			if pa.Conservative {
				note = "  [conservative: assumption violation]"
			}
			fmt.Printf("  %-4s %-4s %s%s\n", u.ID, q.ID, pa, note)
		}
	}

	c := a.Counts()
	fmt.Printf("\nBucket counts: A=B=C=0: %d | B<A,C<B: %d | B<A,C=B: %d | B=A,C=B: %d | B=A,C<B: %d\n",
		c.AllZero, c.BLessCLess, c.BLessCEq, c.BEqCEq, c.BEqCLess)

	m := core.Methodology{App: app, Compulsory: compulsory, Opts: opts}
	r := m.Run()
	fmt.Println("\nMethodology (Step 1 compulsory caps, then Step 2b reduction):")
	for _, q := range app.Queries {
		fmt.Printf("  %-4s %-8s -> %s\n", q.ID, r.Initial[q.ID], r.Final[q.ID])
	}
	for _, u := range app.Updates {
		fmt.Printf("  %-4s %-8s -> %s\n", u.ID, r.Initial[u.ID], r.Final[u.ID])
	}
	fmt.Printf("\nQuery templates with encrypted results: %d of %d (was %d under compulsory caps alone)\n",
		core.EncryptedResultCount(app, r.Final), len(app.Queries),
		core.EncryptedResultCount(app, r.Initial))
	return nil
}
