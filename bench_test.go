package dssp

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks for the substrate components. The experiment benches
// report their headline numbers through b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every result in one run:
//
//	BenchmarkTable2    invalidation scenarios of Table 2
//	BenchmarkTable4    toystore IPM characterization of Table 4
//	BenchmarkTable7    three-application characterization of Table 7
//	BenchmarkFigure3   bookstore security-scalability tradeoff points
//	BenchmarkFigure4   strategy-class containment (Figure 4)
//	BenchmarkFigure6   IPM of one pair (Figure 6)
//	BenchmarkFigure7   exposure reduction (Figure 7)
//	BenchmarkFigure8   scalability per invalidation strategy (Figure 8)
//
// The Figure 3/8 benches use scaled-down quick runs; `cmd/dsspbench -full`
// reproduces the paper's 10-minute configuration.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dssp/internal/apps"
	"dssp/internal/core"
	"dssp/internal/encrypt"
	"dssp/internal/engine"
	"dssp/internal/experiments"
	"dssp/internal/metrics"
	"dssp/internal/simrun"
	"dssp/internal/sqlparse"
	"dssp/internal/storage"
	"dssp/internal/template"
	"dssp/internal/wire"
)

// ---- Experiment benches: one per table/figure ----

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table4().Analysis == nil {
			b.Fatal("no analysis")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	var last *experiments.Table7Result
	for i := 0; i < b.N; i++ {
		last = experiments.Table7()
	}
	for _, row := range last.Rows {
		c := row.Counts
		b.ReportMetric(float64(c.AllZero), row.App+"_AZero")
		b.ReportMetric(float64(c.Total()), row.App+"_pairs")
	}
}

func BenchmarkFigure3(b *testing.B) {
	opts := quickOpts()
	var last *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, p := range last.Points {
		b.ReportMetric(float64(p.Users), fmt.Sprintf("users_enc%d", p.EncryptedResults))
	}
}

func BenchmarkFigure4(b *testing.B) {
	var last *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(apps.NewBBoard(), 500, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if r.Violations != 0 || r.MissedGround != 0 {
			b.Fatalf("containment/correctness violated: %+v", r)
		}
		last = r
	}
	for _, c := range []string{"MBS", "MTIS", "MSIS", "MVIS"} {
		b.ReportMetric(float64(last.Invalidated[c]), c+"_inval")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6("U1", "Q2"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	var last *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure7()
	}
	for _, app := range last.Apps {
		b.ReportMetric(float64(app.EncryptedResultsFinal), app.App+"_encrypted")
	}
}

func BenchmarkFigure8(b *testing.B) {
	opts := quickOpts()
	var last *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(float64(row.Users), row.App+"_"+row.Strategy)
	}
}

func BenchmarkSecuritySummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Security()
		if len(r.Apps) != 3 {
			b.Fatal("bad app count")
		}
	}
}

// quickOpts scales the simulation experiments down for benchmark runs:
// shorter virtual runs and a lower user cap preserve the shape while
// keeping `go test -bench=.` inside the default test timeout. The
// EXPERIMENTS.md sweeps use cmd/dsspbench with the larger quick or full
// configurations.
func quickOpts() experiments.RunOptions {
	opts := experiments.DefaultRunOptions()
	opts.MaxUsers = 500
	opts.Duration = 120 * time.Second
	opts.Warmup = 30 * time.Second
	return opts
}

// ---- Micro-benchmarks: the substrate ----

func BenchmarkParseSelect(b *testing.B) {
	src := "SELECT i_id, i_title, i_cost FROM item WHERE i_subject=? ORDER BY i_title LIMIT 50"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDB(b *testing.B) *storage.Database {
	b.Helper()
	bench := apps.NewBookstore()
	db := storage.NewDatabase(bench.App().Schema)
	if err := bench.Populate(db, rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkEnginePointQuery(b *testing.B) {
	db := benchDB(b)
	q := apps.NewBookstore().App().Query("Q5").Stmt.(*sqlparse.SelectStmt)
	params := []sqlparse.Value{sqlparse.IntVal(7)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExecQuery(db, q, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineIndexedJoin(b *testing.B) {
	db := benchDB(b)
	q := apps.NewBookstore().App().Query("Q6").Stmt.(*sqlparse.SelectStmt)
	params := []sqlparse.Value{sqlparse.IntVal(7)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExecQuery(db, q, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGroupByTopK(b *testing.B) {
	db := benchDB(b)
	q := apps.NewBookstore().App().Query("Q4").Stmt.(*sqlparse.SelectStmt)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExecQuery(db, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeBookstore(b *testing.B) {
	app := apps.NewBookstore().App()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Analyze(app, core.DefaultOptions())
	}
}

func BenchmarkMethodologyBookstore(b *testing.B) {
	bench := apps.NewBookstore()
	m := core.Methodology{App: bench.App(), Compulsory: bench.Compulsory(), Opts: core.DefaultOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run()
	}
}

func BenchmarkSealQuery(b *testing.B) {
	app := apps.Toystore()
	kr := encrypt.MustNewKeyring(make([]byte, encrypt.KeySize))
	codec := wire.NewCodec(app, kr, map[string]template.Exposure{"Q2": template.ExpBlind})
	q := app.Query("Q2")
	params := []sqlparse.Value{sqlparse.IntVal(5)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.SealQuery(q, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeterministicSeal(b *testing.B) {
	kr := encrypt.MustNewKeyring(make([]byte, encrypt.KeySize))
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kr.Seal("bench", payload)
	}
}

func BenchmarkSystemQueryHit(b *testing.B) {
	app := apps.Toystore()
	sys, err := NewSystem(app, make([]byte, KeySize), nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.DB.Insert("toys", []Value{Int(5), String("kite"), Int(25)}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Query("Q2", 5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query("Q2", 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedSecond(b *testing.B) {
	// Cost of simulating one virtual second of the bboard at 100 users.
	bench := apps.NewBBoard()
	cfg := simrun.DefaultConfig(bench, 100)
	cfg.Duration = time.Duration(b.N) * time.Second
	b.ResetTimer()
	r, err := simrun.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(r.Ops)/float64(b.N), "ops/vsec")
}

func BenchmarkScalabilitySearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := apps.NewBBoard()
		cfg := simrun.DefaultConfig(bench, 0)
		cfg.Duration = 60 * time.Second
		cfg.Warmup = 20 * time.Second
		cfg.Exposures = simrun.UniformExposures(bench.App(), template.ExpView)
		if _, err := simrun.MaxUsers(cfg, metrics.DefaultSLA(), 200); err != nil {
			b.Fatal(err)
		}
	}
}
